// Package store is dprofd's disk layer: a content-addressed, write-once
// object store for finished profile documents.
//
// Profiles are deterministic and immutable — the same canonical request
// always produces the same bytes — so cache-forever is correct and the
// store never updates an entry in place. Each object lives in its own
// file under the store directory, named by the SHA-256 of its content
// address and prefixed with a JSON header carrying the address, length,
// and a SHA-256 checksum of the body. Writes are crash-safe: the object
// is written to a temp file in the final directory, fsync'd, and then
// hard-linked into place, so a reader never observes a partial object and
// the first complete write wins every race. A corrupt or truncated file
// (torn write, bit rot) fails its checksum on Get, is dropped on the
// spot, and the caller's re-simulation repairs the entry with its next
// Put.
package store

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Store is a disk-backed content-addressed object store. All methods are
// safe for concurrent use; the filesystem provides the synchronization
// (atomic link for writes, whole-file reads for gets).
type Store struct {
	dir string

	// maxBytes bounds the resident file bytes (0 = unbounded). When a Put
	// pushes the store past the budget, a sweep deletes the least recently
	// accessed objects (Get refreshes a hit file's mtime, so mtime order is
	// access order) until the store fits again. Deleting is always safe:
	// entries are immutable and re-derivable, so a swept profile simply
	// re-simulates on its next miss.
	maxBytes int64
	sweepMu  sync.Mutex // one sweeper at a time

	entries  atomic.Int64
	resident atomic.Int64 // file bytes on disk (headers + bodies)
	hits     atomic.Int64
	misses   atomic.Int64
	puts     atomic.Int64
	rejected atomic.Int64 // write-once: Put on an existing object
	corrupt  atomic.Int64 // checksum/length failures dropped on Get
	bytesIn  atomic.Int64 // body bytes written
	bytesOut atomic.Int64 // body bytes served

	sweeps       atomic.Int64 // over-budget sweep passes
	sweptObjects atomic.Int64 // objects deleted by sweeps
	sweptBytes   atomic.Int64 // file bytes reclaimed by sweeps
}

// Stats is a point-in-time snapshot of the store's counters.
type Stats struct {
	Dir           string `json:"dir"`
	Entries       int64  `json:"entries"`
	Hits          int64  `json:"hits"`
	Misses        int64  `json:"misses"`
	Puts          int64  `json:"puts"`
	Rejected      int64  `json:"write_once_rejected"`
	Corrupt       int64  `json:"corrupt_dropped"`
	BytesWritten  int64  `json:"bytes_written"`
	BytesRead     int64  `json:"bytes_read"`
	MaxBytes      int64  `json:"max_bytes"`
	BytesResident int64  `json:"bytes_resident"`
	Sweeps        int64  `json:"sweeps"`
	SweptObjects  int64  `json:"swept_objects"`
	SweptBytes    int64  `json:"swept_bytes"`
}

// header is the first line of every object file. Len and SHA256 cover the
// body that follows the newline; Address ties the file back to the cache
// key it serves (and guards against a file landing under the wrong name).
type header struct {
	V       int    `json:"v"`
	Address string `json:"address"`
	Len     int    `json:"len"`
	SHA256  string `json:"sha256"`
}

const tmpPrefix = ".tmp-"

// Open creates (if needed) and validates the store directory. It probes
// writability up front so a misconfigured deployment fails at startup
// with a clear error instead of on the first Put, sweeps temp files left
// by a crashed writer, and counts the resident objects.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, errors.New("store: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: directory %s is not usable: %w", dir, err)
	}
	probe := filepath.Join(dir, ".probe")
	if err := os.WriteFile(probe, []byte("ok\n"), 0o644); err != nil {
		return nil, fmt.Errorf("store: directory %s is not writable: %w", dir, err)
	}
	os.Remove(probe)

	s := &Store{dir: dir}
	var n, bytes int64
	err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		if strings.HasPrefix(d.Name(), tmpPrefix) {
			os.Remove(path) // a crashed writer's leftovers; never linked
			return nil
		}
		n++
		if info, err := d.Info(); err == nil {
			bytes += info.Size()
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("store: scanning %s: %w", dir, err)
	}
	s.entries.Store(n)
	s.resident.Store(bytes)
	return s, nil
}

// SetMaxBytes bounds the store's resident file bytes; 0 removes the bound.
// A store already over the new budget sweeps immediately, so a restarted
// daemon with a tightened -store-max-bytes converges at startup rather
// than on its first Put.
func (s *Store) SetMaxBytes(n int64) {
	s.maxBytes = n
	s.maybeSweep("")
}

// maybeSweep deletes the least recently accessed objects (by file mtime,
// which Get refreshes on every hit; path as the tie break) until the store
// fits its byte budget again. keep, when non-empty,
// is the object the caller just linked into place: the newest entry is
// never the right eviction choice, and protecting it keeps a single
// over-budget object from thrashing write/sweep/write.
func (s *Store) maybeSweep(keep string) {
	if s.maxBytes <= 0 || s.resident.Load() <= s.maxBytes {
		return
	}
	s.sweepMu.Lock()
	defer s.sweepMu.Unlock()
	if s.resident.Load() <= s.maxBytes {
		return // a concurrent sweeper already got us under budget
	}
	type obj struct {
		path  string
		size  int64
		mtime time.Time
	}
	var objs []obj
	filepath.WalkDir(s.dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() || strings.HasPrefix(d.Name(), tmpPrefix) {
			return nil
		}
		if info, err := d.Info(); err == nil {
			objs = append(objs, obj{path, info.Size(), info.ModTime()})
		}
		return nil
	})
	sort.Slice(objs, func(i, j int) bool {
		if !objs[i].mtime.Equal(objs[j].mtime) {
			return objs[i].mtime.Before(objs[j].mtime)
		}
		return objs[i].path < objs[j].path
	})
	s.sweeps.Add(1)
	for _, o := range objs {
		if s.resident.Load() <= s.maxBytes {
			break
		}
		if o.path == keep {
			continue
		}
		if os.Remove(o.path) == nil {
			s.entries.Add(-1)
			s.resident.Add(-o.size)
			s.sweptObjects.Add(1)
			s.sweptBytes.Add(o.size)
		}
	}
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Len reports the resident object count.
func (s *Store) Len() int64 { return s.entries.Load() }

// path maps a content address onto disk: objects shard into 256 prefix
// directories by the first byte of the address hash, so no single
// directory grows unboundedly.
func (s *Store) path(address string) string {
	sum := sha256.Sum256([]byte(address))
	name := hex.EncodeToString(sum[:])
	return filepath.Join(s.dir, name[:2], name)
}

// Get returns the stored body for a content address. A file that fails
// validation — short, torn, flipped bits, or written under the wrong
// name — is deleted so the next Put can repair the entry, and reported
// as a miss; the caller falls back to recomputing.
//
// A hit bumps the file's mtime, so the sweep's oldest-mtime order is
// true access order: a profile that is still being served survives
// budget pressure, and eviction lands on objects nothing has read.
// The bump is best-effort — a racing sweep can delete the file first,
// and serving the bytes we already read is still correct.
func (s *Store) Get(address string) ([]byte, bool) {
	p := s.path(address)
	raw, err := os.ReadFile(p)
	if err != nil {
		s.misses.Add(1)
		return nil, false
	}
	body, ok := decode(raw, address)
	if !ok {
		s.corrupt.Add(1)
		s.misses.Add(1)
		if os.Remove(p) == nil {
			s.entries.Add(-1)
			s.resident.Add(-int64(len(raw)))
		}
		return nil, false
	}
	now := time.Now()
	os.Chtimes(p, now, now)
	s.hits.Add(1)
	s.bytesOut.Add(int64(len(body)))
	return body, true
}

// decode splits an object file into header and body and validates both.
func decode(raw []byte, address string) ([]byte, bool) {
	nl := -1
	for i, b := range raw {
		if b == '\n' {
			nl = i
			break
		}
	}
	if nl < 0 {
		return nil, false
	}
	var h header
	if err := json.Unmarshal(raw[:nl], &h); err != nil {
		return nil, false
	}
	body := raw[nl+1:]
	if h.V != 1 || h.Address != address || h.Len != len(body) {
		return nil, false
	}
	sum := sha256.Sum256(body)
	if hex.EncodeToString(sum[:]) != h.SHA256 {
		return nil, false
	}
	return body, true
}

// Put stores a body under its content address, write-once: if the object
// already exists the call is a no-op (the store trusts the first complete
// write — contents are deterministic, so racers carry identical bytes).
// The write path is crash-safe: temp file in the final directory, fsync,
// hard link into place (link fails atomically if another writer won),
// then a directory fsync so the name survives a crash.
func (s *Store) Put(address string, body []byte) error {
	p := s.path(address)
	if _, err := os.Stat(p); err == nil {
		s.rejected.Add(1)
		return nil
	}
	dir := filepath.Dir(p)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("store: put %s: %w", address, err)
	}
	sum := sha256.Sum256(body)
	hdr, err := json.Marshal(header{V: 1, Address: address, Len: len(body), SHA256: hex.EncodeToString(sum[:])})
	if err != nil {
		return fmt.Errorf("store: put %s: %w", address, err)
	}
	tmp, err := os.CreateTemp(dir, tmpPrefix+"*")
	if err != nil {
		return fmt.Errorf("store: put %s: %w", address, err)
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(append(append(hdr, '\n'), body...)); err != nil {
		tmp.Close()
		return fmt.Errorf("store: put %s: %w", address, err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("store: put %s: %w", address, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("store: put %s: %w", address, err)
	}
	if err := os.Link(tmp.Name(), p); err != nil {
		if errors.Is(err, fs.ErrExist) {
			s.rejected.Add(1) // lost the race; the winner's bytes are identical
			return nil
		}
		return fmt.Errorf("store: put %s: %w", address, err)
	}
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
	s.puts.Add(1)
	s.entries.Add(1)
	s.bytesIn.Add(int64(len(body)))
	s.resident.Add(int64(len(hdr)) + 1 + int64(len(body)))
	s.maybeSweep(p)
	return nil
}

// Stats snapshots the counters.
func (s *Store) Stats() Stats {
	return Stats{
		Dir:           s.dir,
		Entries:       s.entries.Load(),
		Hits:          s.hits.Load(),
		Misses:        s.misses.Load(),
		Puts:          s.puts.Load(),
		Rejected:      s.rejected.Load(),
		Corrupt:       s.corrupt.Load(),
		BytesWritten:  s.bytesIn.Load(),
		BytesRead:     s.bytesOut.Load(),
		MaxBytes:      s.maxBytes,
		BytesResident: s.resident.Load(),
		Sweeps:        s.sweeps.Load(),
		SweptObjects:  s.sweptObjects.Load(),
		SweptBytes:    s.sweptBytes.Load(),
	}
}
