package oprofile

import "dprof/internal/sym"

// Profiler implements sim.Snapshotter so a warm-start checkpoint taken while
// collection is running (table 6.3 profiles across the whole run) restores
// the per-function counters exactly.

type profState struct {
	fns     map[sym.PC]fnStats
	total   fnStats
	enabled bool
}

// SnapshotState implements sim.Snapshotter.
func (p *Profiler) SnapshotState() any {
	st := &profState{
		fns:     make(map[sym.PC]fnStats, len(p.fns)),
		total:   p.total,
		enabled: p.enabled,
	}
	for pc, s := range p.fns {
		st.fns[pc] = *s
	}
	return st
}

// RestoreState implements sim.Snapshotter.
func (p *Profiler) RestoreState(state any) {
	st := state.(*profState)
	p.fns = make(map[sym.PC]*fnStats, len(st.fns))
	for pc, s := range st.fns {
		cp := s
		p.fns[pc] = &cp
	}
	p.total = st.total
	p.enabled = st.enabled
}
