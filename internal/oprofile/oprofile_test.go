package oprofile

import (
	"strings"
	"testing"

	"dprof/internal/sim"
)

func testMachine() *sim.Machine {
	cfg := sim.DefaultConfig()
	cfg.Cores = 2
	return sim.New(cfg)
}

func TestAttributesCyclesToFunctions(t *testing.T) {
	m := testMachine()
	p := Attach(m)
	p.Start()
	m.Schedule(0, 0, func(c *sim.Ctx) {
		func() {
			defer c.Leave(c.Enter("busy"))
			c.Compute(900)
		}()
		func() {
			defer c.Leave(c.Enter("idle_fn"))
			c.Compute(100)
		}()
	})
	m.RunAll()
	rep := p.BuildReport(0)
	if len(rep.Rows) != 2 {
		t.Fatalf("rows = %d: %+v", len(rep.Rows), rep.Rows)
	}
	if rep.Rows[0].Function != "busy" {
		t.Fatalf("top function = %s", rep.Rows[0].Function)
	}
	if rep.Rows[0].ClkPct < 89 || rep.Rows[0].ClkPct > 91 {
		t.Fatalf("busy pct = %f, want ~90", rep.Rows[0].ClkPct)
	}
}

func TestAttributesL2Misses(t *testing.T) {
	m := testMachine()
	p := Attach(m)
	p.Start()
	m.Schedule(0, 0, func(c *sim.Ctx) {
		func() {
			defer c.Leave(c.Enter("misser"))
			for i := 0; i < 64; i++ {
				c.Read(uint64(i)*64, 8) // cold: all DRAM
			}
		}()
		func() {
			defer c.Leave(c.Enter("hitter"))
			for i := 0; i < 64; i++ {
				c.Read(0, 8) // all L1 after the first
			}
		}()
	})
	m.RunAll()
	rep := p.BuildReport(0)
	var misser, hitter Row
	for _, r := range rep.Rows {
		switch r.Function {
		case "misser":
			misser = r
		case "hitter":
			hitter = r
		}
	}
	if misser.L2Pct < 99 {
		t.Fatalf("misser L2 pct = %f", misser.L2Pct)
	}
	if hitter.L2Pct > 1 {
		t.Fatalf("hitter L2 pct = %f", hitter.L2Pct)
	}
}

func TestMinPctFilter(t *testing.T) {
	m := testMachine()
	p := Attach(m)
	p.Start()
	m.Schedule(0, 0, func(c *sim.Ctx) {
		func() { defer c.Leave(c.Enter("major")); c.Compute(990) }()
		func() { defer c.Leave(c.Enter("minor")); c.Compute(5) }()
	})
	m.RunAll()
	rep := p.BuildReport(1.0)
	for _, r := range rep.Rows {
		if r.Function == "minor" {
			t.Fatal("sub-threshold function not filtered")
		}
	}
}

func TestStartStopReset(t *testing.T) {
	m := testMachine()
	p := Attach(m)
	m.Schedule(0, 0, func(c *sim.Ctx) {
		defer c.Leave(c.Enter("before_start"))
		c.Compute(100)
	})
	m.RunAll()
	if len(p.BuildReport(0).Rows) != 0 {
		t.Fatal("collected while stopped")
	}
	p.Start()
	m.Schedule(0, m.MaxCoreTime(), func(c *sim.Ctx) {
		defer c.Leave(c.Enter("during"))
		c.Compute(100)
	})
	m.RunAll()
	if len(p.BuildReport(0).Rows) != 1 {
		t.Fatal("did not collect while started")
	}
	p.Reset()
	if len(p.BuildReport(0).Rows) != 0 {
		t.Fatal("reset did not clear")
	}
}

func TestRenderedReport(t *testing.T) {
	m := testMachine()
	p := Attach(m)
	p.Start()
	m.Schedule(0, 0, func(c *sim.Ctx) {
		defer c.Leave(c.Enter("render_fn"))
		c.Compute(100)
	})
	m.RunAll()
	out := p.BuildReport(0).String()
	if !strings.Contains(out, "render_fn") || !strings.Contains(out, "% CLK") {
		t.Fatalf("report = %q", out)
	}
}
