// Package oprofile implements the code-profiler baseline the paper compares
// DProf against (§6.1.3, §6.2.3): functions ranked by share of clock cycles
// and by share of L2 misses, like OProfile driven by hardware counters.
//
// It demonstrates the paper's point: the output is a flat list of functions,
// each with a small percentage, with no way to tell that many of them miss
// on the *same data*.
package oprofile

import (
	"fmt"
	"sort"
	"strings"

	"dprof/internal/cache"
	"dprof/internal/sim"
	"dprof/internal/sym"
)

// fnStats accumulates per-function counters.
type fnStats struct {
	cycles   uint64
	l2Misses uint64 // accesses that missed the private L2 (L3/foreign/DRAM)
	accesses uint64
}

// Profiler attributes cycles and cache events to code locations.
type Profiler struct {
	m       *sim.Machine
	fns     map[sym.PC]*fnStats
	total   fnStats
	enabled bool
}

// Attach hooks the profiler into the machine. It starts disabled.
func Attach(m *sim.Machine) *Profiler {
	p := &Profiler{m: m, fns: make(map[sym.PC]*fnStats, 256)}
	// Armed on enablement: while stopped, the machine skips access-event
	// dispatch for this hook entirely.
	m.AddArmedAccessHook(p.onAccess, sim.HookArm{NextTime: p.nextArm})
	m.AddWorkHook(p.onWork)
	m.AddSnapshotter(p)
	return p
}

// nextArm arms the access hook while collection is enabled.
func (p *Profiler) nextArm(int) uint64 {
	if p.enabled {
		return sim.ArmAlways
	}
	return sim.ArmNever
}

// Start enables collection.
func (p *Profiler) Start() {
	p.enabled = true
	p.m.Rearm()
}

// Stop disables collection.
func (p *Profiler) Stop() {
	p.enabled = false
	p.m.Rearm()
}

// Reset clears all counters.
func (p *Profiler) Reset() {
	p.fns = make(map[sym.PC]*fnStats, 256)
	p.total = fnStats{}
}

func (p *Profiler) statsFor(pc sym.PC) *fnStats {
	s := p.fns[pc]
	if s == nil {
		s = &fnStats{}
		p.fns[pc] = s
	}
	return s
}

func (p *Profiler) onAccess(c *sim.Ctx, ev *sim.AccessEvent) {
	if !p.enabled {
		return
	}
	s := p.statsFor(ev.PC)
	s.accesses++
	p.total.accesses++
	if ev.Level != cache.L1Hit && ev.Level != cache.L2Hit {
		s.l2Misses++
		p.total.l2Misses++
	}
}

func (p *Profiler) onWork(c *sim.Ctx, pc sym.PC, cycles uint64) {
	if !p.enabled {
		return
	}
	p.statsFor(pc).cycles += cycles
	p.total.cycles += cycles
}

// Absorb folds another profiler's counters into p (used to combine the
// per-shard baselines of a sharded run). Every counter is a sum, and the
// report sorts by share then name, so the combined report is independent of
// absorb order.
func (p *Profiler) Absorb(o *Profiler) {
	for pc, s := range o.fns {
		d := p.statsFor(pc)
		d.cycles += s.cycles
		d.l2Misses += s.l2Misses
		d.accesses += s.accesses
	}
	p.total.cycles += o.total.cycles
	p.total.l2Misses += o.total.l2Misses
	p.total.accesses += o.total.accesses
}

// Row is one function in the report.
type Row struct {
	Function string
	ClkPct   float64
	L2Pct    float64
}

// Report is the OProfile output: functions ranked by clock share, mirroring
// Table 6.3.
type Report struct {
	Rows []Row
}

// BuildReport ranks functions by cycle share; minPct filters noise rows the
// way the paper's table cuts off below ~1%.
func (p *Profiler) BuildReport(minPct float64) Report {
	var rep Report
	for pc, s := range p.fns {
		if pc == sym.None {
			continue
		}
		row := Row{Function: sym.Name(pc)}
		if p.total.cycles > 0 {
			row.ClkPct = 100 * float64(s.cycles) / float64(p.total.cycles)
		}
		if p.total.l2Misses > 0 {
			row.L2Pct = 100 * float64(s.l2Misses) / float64(p.total.l2Misses)
		}
		if row.ClkPct < minPct && row.L2Pct < minPct {
			continue
		}
		rep.Rows = append(rep.Rows, row)
	}
	sort.Slice(rep.Rows, func(i, j int) bool {
		if rep.Rows[i].ClkPct != rep.Rows[j].ClkPct {
			return rep.Rows[i].ClkPct > rep.Rows[j].ClkPct
		}
		return rep.Rows[i].Function < rep.Rows[j].Function
	})
	return rep
}

// String renders the report like Table 6.3.
func (rep Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%6s %12s  %s\n", "% CLK", "% L2 Misses", "Function")
	for _, r := range rep.Rows {
		fmt.Fprintf(&b, "%5.1f%% %11.2f%%  %s\n", r.ClkPct, r.L2Pct, r.Function)
	}
	return b.String()
}
