package mem

// pageTable maps SlabBytes-aligned page numbers to their slab bookkeeping.
// It is an open-addressed, linear-probing table (same layout rules as the
// cache package's directory: keys stored as page+1 so the zero entry means
// empty, fibonacci multiplicative hashing, grow at 3/4 occupancy). The
// allocator consults it on every Free and ownership resolution — on the
// simulator's hot path — where it replaces a Go map and its generic hash
// and bucket machinery with a single probe in the common case. Slabs are
// never unmapped, so the table needs no deletion.
type pageTable struct {
	keys  []uint64 // page+1; 0 = empty
	vals  []*slabInfo
	mask  uint64
	shift uint
	n     int
}

const pageHashMul = 0x9E3779B97F4A7C15

func newPageTable() *pageTable {
	const size = 1 << 12
	return &pageTable{
		keys:  make([]uint64, size),
		vals:  make([]*slabInfo, size),
		mask:  size - 1,
		shift: pageShiftFor(size),
	}
}

func pageShiftFor(size uint64) uint {
	s := uint(64)
	for size > 1 {
		size >>= 1
		s--
	}
	return s
}

func (t *pageTable) slot(key uint64) uint64 { return (key * pageHashMul) >> t.shift }

// get returns the slab owning page, or nil.
func (t *pageTable) get(pg uint64) *slabInfo {
	key := pg + 1
	for i := t.slot(key); ; i = (i + 1) & t.mask {
		k := t.keys[i]
		if k == key {
			return t.vals[i]
		}
		if k == 0 {
			return nil
		}
	}
}

// set stores s for page, overwriting any previous entry.
func (t *pageTable) set(pg uint64, s *slabInfo) {
	key := pg + 1
	for i := t.slot(key); ; i = (i + 1) & t.mask {
		k := t.keys[i]
		if k == key {
			t.vals[i] = s
			return
		}
		if k == 0 {
			t.keys[i], t.vals[i] = key, s
			t.n++
			if uint64(t.n)*4 > uint64(len(t.keys))*3 {
				t.grow()
			}
			return
		}
	}
}

func (t *pageTable) grow() {
	oldKeys, oldVals := t.keys, t.vals
	size := uint64(len(oldKeys)) * 2
	t.keys = make([]uint64, size)
	t.vals = make([]*slabInfo, size)
	t.mask = size - 1
	t.shift = pageShiftFor(size)
	t.n = 0
	for i, k := range oldKeys {
		if k != 0 {
			t.set(k-1, oldVals[i])
		}
	}
}

// pages returns every mapped page number, in table order (callers that need
// determinism must sort).
func (t *pageTable) pages() []uint64 {
	out := make([]uint64, 0, t.n)
	for _, k := range t.keys {
		if k != 0 {
			out = append(out, k-1)
		}
	}
	return out
}
