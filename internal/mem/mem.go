// Package mem implements the simulated kernel memory subsystem: a typed SLAB
// allocator in the style of the Linux allocator the paper instruments (§5.2).
//
// Every allocation comes from a per-type pool ("kmem_cache"), carved out of
// 4 KB slabs. Each pool has per-CPU array caches for fast local alloc/free,
// and per-home-core alien caches that buffer objects freed on a core other
// than the one that owns the slab — the __drain_alien_cache behaviour central
// to the memcached case study. Slab bookkeeping ("slab") and the array caches
// ("array_cache") are themselves typed simulated objects, so their cache
// misses show up in DProf's data profile just as they do in Table 6.1.
//
// The allocator is also DProf's type oracle: Resolve maps any simulated
// address back to (type, object base, offset), and alloc/free hooks feed
// DProf's address set and object-history collection.
package mem

import (
	"fmt"
	"sort"
	"strings"

	"dprof/internal/cache"
	"dprof/internal/lockstat"
	"dprof/internal/sim"
)

const (
	// SlabBytes is the size of one slab (one page, like Linux order-0 SLABs).
	SlabBytes = 4096
	// SlabShift is log2(SlabBytes).
	SlabShift = 12

	// Address-space layout. Regions never overlap; all object addresses are
	// derived from these bases.
	staticBase   = 0x0010_0000 // statically-allocated (global) objects
	slabBase     = 0x4000_0000 // dynamic slabs
	internalBase = 0x8000_0000 // slab bookkeeping + array caches

	// DefaultAlign is the default object alignment: one cache line, which is
	// how the kernel aligns most of its hot structures. Types may opt into a
	// smaller alignment to exhibit false sharing.
	DefaultAlign = 64
)

// Policy selects the NUMA home node of freshly-allocated slabs on
// multi-socket machines (it is inert on the single-socket default).
type Policy int

const (
	// FirstTouch homes each slab on the socket of the core that grew the
	// pool — the Linux default, and the policy that keeps per-core slabs
	// node-local.
	FirstTouch Policy = iota
	// Interleave spreads slabs round-robin across sockets.
	Interleave
	// Pinned homes every slab on Config.PinnedNode.
	Pinned
)

// String names the policy (the -alloc-policy CLI value).
func (p Policy) String() string {
	switch p {
	case FirstTouch:
		return "firsttouch"
	case Interleave:
		return "interleave"
	case Pinned:
		return "pinned"
	}
	return fmt.Sprintf("Policy(%d)", int(p))
}

// PolicyNames lists the accepted ParsePolicy spellings.
func PolicyNames() []string { return []string{"firsttouch", "interleave", "pinned"} }

// ParsePolicy parses a policy name.
func ParsePolicy(s string) (Policy, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "firsttouch", "first-touch", "local", "":
		return FirstTouch, nil
	case "interleave":
		return Interleave, nil
	case "pinned":
		return Pinned, nil
	}
	return FirstTouch, fmt.Errorf("mem: unknown allocation policy %q (known: %s)",
		s, strings.Join(PolicyNames(), ", "))
}

// Config tunes the allocator's caching behaviour.
type Config struct {
	ArrayCacheCap int // per-CPU free-object stack capacity
	BatchCount    int // objects moved per refill/flush
	AlienCap      int // alien cache capacity per (pool, home core)

	// Policy and PinnedNode choose slab NUMA homes; see Policy. They take
	// effect once BindMachine attaches the allocator to a multi-socket
	// machine.
	Policy     Policy
	PinnedNode int
}

// DefaultConfig mirrors typical Linux SLAB tunables (first-touch homes).
func DefaultConfig() Config {
	return Config{ArrayCacheCap: 32, BatchCount: 16, AlienCap: 12}
}

// Type describes a typed object class (a kmem_cache, or a static object).
type Type struct {
	Name string
	Desc string
	Size uint64 // requested object size in bytes

	objSize  uint64 // Size rounded up to the pool's alignment
	pool     *pool
	internal bool // allocator-internal (slab, array_cache) or static
}

// ObjSize returns the aligned per-object footprint.
func (t *Type) ObjSize() uint64 { return t.objSize }

// slabInfo is the bookkeeping for one slab (a contiguous run of objects of a
// single type). For dynamic slabs, metaAddr is the simulated address of the
// corresponding "slab" bookkeeping object; accesses to the freelist during
// refill/drain hit that address.
type slabInfo struct {
	t        *Type
	base     uint64
	objSize  uint64
	nobj     int
	home     int // core whose traffic allocated this slab
	metaAddr uint64
	free     []uint64
	inuse    int
}

// arrayCache is a per-CPU (or alien) stack of free objects. Its addr is the
// simulated address of the 128-byte array_cache structure.
type arrayCache struct {
	addr uint64
	objs []uint64
}

type pool struct {
	t      *Type
	kcAddr uint64 // the kmem_cache structure's simulated address
	lock   *lockstat.Lock

	perCPU []*arrayCache
	alien  []*arrayCache // indexed by home core, shared by all remote cores

	partial []*slabInfo // slabs with free objects
	slabs   int

	live  uint64
	peak  uint64
	alloc uint64
	frees uint64
}

// AllocWatcher is invoked once when the next object of a watched type is
// allocated (DProf's history collector uses this to trap a fresh object).
type AllocWatcher func(c *sim.Ctx, addr uint64)

// EventHook observes every allocation or free (DProf's address set).
type EventHook func(c *sim.Ctx, t *Type, addr uint64)

// Allocator is the simulated kernel memory subsystem.
type Allocator struct {
	cfg   Config
	cores int
	locks *lockstat.Registry

	types     map[string]*Type
	typeOrder []*Type

	slabMap    *pageTable // page number -> slab
	nextSlab   uint64
	nextMeta   uint64
	nextStatic uint64

	slabType *Type // "slab" bookkeeping objects
	acType   *Type // "array_cache" objects
	kcType   *Type // "kmem_cache" pool headers

	// internal carving state per internal type
	carve map[*Type]*slabInfo

	lockClass *lockstat.Class

	statics      []ObjRef
	internalObjs []ObjRef

	// NUMA home binding (nil hier or single-socket topology disables it).
	hier     *cache.Hierarchy
	topo     cache.Topology
	nextNode int // interleave cursor

	onAlloc []EventHook
	onFree  []EventHook
	watch   map[*Type][]AllocWatcher
}

// New builds an allocator for a machine with the given core count. Lock
// statistics are recorded into locks.
func New(cfg Config, cores int, locks *lockstat.Registry) *Allocator {
	if cfg.ArrayCacheCap <= 0 || cfg.BatchCount <= 0 || cfg.AlienCap <= 0 {
		panic("mem: config values must be positive")
	}
	a := &Allocator{
		cfg:        cfg,
		cores:      cores,
		locks:      locks,
		types:      make(map[string]*Type),
		slabMap:    newPageTable(),
		nextSlab:   slabBase,
		nextMeta:   internalBase,
		nextStatic: staticBase,
		carve:      make(map[*Type]*slabInfo),
		watch:      make(map[*Type][]AllocWatcher),
	}
	a.lockClass = locks.Class("SLAB cache lock")
	a.slabType = a.registerRaw("slab", 256, "SLAB bookkeeping structure", DefaultAlign, true)
	a.acType = a.registerRaw("array_cache", 128, "SLAB per-core bookkeeping structure", DefaultAlign, true)
	a.kcType = a.registerRaw("kmem_cache", 256, "SLAB pool header", DefaultAlign, true)
	return a
}

// BindMachine attaches the allocator's home-node policy to a machine: every
// page the allocator hands out from now on is assigned a NUMA home in the
// machine's cache hierarchy per Config.Policy. Call it right after New, on
// the machine the workload runs on; it is a no-op wiring on single-socket
// machines. (Pages carved before binding stay home-less, i.e. node-local.)
func (a *Allocator) BindMachine(m *sim.Machine) {
	topo := m.Topology()
	if topo.NumCores() != a.cores {
		panic(fmt.Sprintf("mem: allocator built for %d cores, machine has %d", a.cores, topo.NumCores()))
	}
	if a.cfg.Policy == Pinned && (a.cfg.PinnedNode < 0 || a.cfg.PinnedNode >= topo.Sockets) {
		panic(fmt.Sprintf("mem: pinned node %d out of range [0,%d)", a.cfg.PinnedNode, topo.Sockets))
	}
	a.hier = m.Hier
	a.topo = topo
	m.AddSnapshotter(a)
}

// assignHome records the NUMA home of the pages in [base, base+size) per the
// configured policy. core is the allocating core for first-touch, or -1 for
// boot-time placements (homed on node 0 under first-touch).
func (a *Allocator) assignHome(base, size uint64, core int) {
	if a.hier == nil || a.topo.Sockets <= 1 {
		return
	}
	var node int
	switch a.cfg.Policy {
	case Pinned:
		node = a.cfg.PinnedNode
	case Interleave:
		// per-page rotation, handled in the loop
	default: // FirstTouch
		if core >= 0 {
			node = a.topo.SocketOf(core)
		}
	}
	for p := base &^ (SlabBytes - 1); p < base+size; p += SlabBytes {
		if a.cfg.Policy == Interleave {
			node = a.nextNode
			a.nextNode = (a.nextNode + 1) % a.topo.Sockets
		}
		a.hier.SetPageHome(p, node)
	}
}

func (a *Allocator) registerRaw(name string, size uint64, desc string, align uint64, internal bool) *Type {
	if _, ok := a.types[name]; ok {
		panic(fmt.Sprintf("mem: duplicate type %q", name))
	}
	if size == 0 {
		panic(fmt.Sprintf("mem: type %q has zero size", name))
	}
	if align == 0 {
		align = DefaultAlign
	}
	objSize := (size + align - 1) &^ (align - 1)
	t := &Type{Name: name, Desc: desc, Size: size, objSize: objSize, internal: internal}
	a.types[name] = t
	a.typeOrder = append(a.typeOrder, t)
	return t
}

// RegisterType creates a typed pool with cache-line alignment.
func (a *Allocator) RegisterType(name string, size uint64, desc string) *Type {
	return a.RegisterTypeAligned(name, size, desc, DefaultAlign)
}

// RegisterTypeAligned creates a typed pool with a specific alignment; an
// alignment below the cache-line size lets multiple objects share lines
// (false sharing).
func (a *Allocator) RegisterTypeAligned(name string, size uint64, desc string, align uint64) *Type {
	if size > SlabBytes {
		panic(fmt.Sprintf("mem: type %q size %d exceeds slab size %d", name, size, SlabBytes))
	}
	t := a.registerRaw(name, size, desc, align, false)
	p := &pool{t: t}
	p.kcAddr = a.carveInternal(a.kcType)
	p.lock = lockstat.NewLock(a.lockClass, p.kcAddr)
	p.perCPU = make([]*arrayCache, a.cores)
	p.alien = make([]*arrayCache, a.cores)
	for i := 0; i < a.cores; i++ {
		p.perCPU[i] = &arrayCache{addr: a.carveInternal(a.acType)}
		p.alien[i] = &arrayCache{addr: a.carveInternal(a.acType)}
	}
	t.pool = p
	return t
}

// Static allocates a named global object (e.g. the net_device structure) and
// returns its address. Static objects resolve like any other typed object.
func (a *Allocator) Static(name string, size uint64, desc string) (*Type, uint64) {
	t, addrs := a.StaticArray(name, size, 1, desc)
	return t, addrs[0]
}

// StaticArray allocates count statically-placed objects of one type (e.g. the
// per-queue Qdisc structures) and returns their addresses. Objects are laid
// out contiguously, cache-line aligned.
func (a *Allocator) StaticArray(name string, objSize uint64, count int, desc string) (*Type, []uint64) {
	if count <= 0 {
		panic(fmt.Sprintf("mem: static array %q with count %d", name, count))
	}
	t := a.registerRaw(name, objSize, desc, DefaultAlign, false)
	// Statics get their own page-aligned region so multi-page layouts stay
	// resolvable: every covered page maps to the same slabInfo.
	base := a.nextStatic
	total := t.objSize * uint64(count)
	pages := (total + SlabBytes - 1) / SlabBytes
	info := &slabInfo{t: t, base: base, objSize: t.objSize, nobj: count, home: -1}
	for p := uint64(0); p < pages; p++ {
		a.slabMap.set((base+p*SlabBytes)>>SlabShift, info)
	}
	a.assignHome(base, pages*SlabBytes, -1)
	a.nextStatic += pages * SlabBytes
	addrs := make([]uint64, count)
	for i := range addrs {
		addrs[i] = base + uint64(i)*t.objSize
		a.statics = append(a.statics, ObjRef{Type: t, Base: addrs[i]})
	}
	return t, addrs
}

// Statics returns every statically-allocated object (in allocation order).
func (a *Allocator) Statics() []ObjRef { return append([]ObjRef(nil), a.statics...) }

// StaticStrided places count objects of one type at a fixed address stride.
// A stride equal to a multiple of (cache sets x line size) forces every
// object into the same associativity set — the layout the conflict-miss
// example uses; other strides spread ("color") the objects. The stride must
// exceed the page size (one object per page) and objects must not straddle
// pages.
func (a *Allocator) StaticStrided(name string, objSize uint64, count int, stride uint64, desc string) (*Type, []uint64) {
	if count <= 0 {
		panic(fmt.Sprintf("mem: strided array %q with count %d", name, count))
	}
	if stride < SlabBytes {
		panic(fmt.Sprintf("mem: stride %d must be at least one page", stride))
	}
	t := a.registerRaw(name, objSize, desc, DefaultAlign, false)
	base := (a.nextStatic + SlabBytes - 1) &^ (SlabBytes - 1)
	addrs := make([]uint64, count)
	for i := range addrs {
		addr := base + uint64(i)*stride
		if addr%SlabBytes+t.objSize > SlabBytes {
			panic(fmt.Sprintf("mem: strided object %d of %q straddles a page", i, name))
		}
		info := &slabInfo{t: t, base: addr, objSize: t.objSize, nobj: 1, home: -1}
		a.slabMap.set(addr>>SlabShift, info)
		a.assignHome(addr, t.objSize, -1)
		addrs[i] = addr
		a.statics = append(a.statics, ObjRef{Type: t, Base: addr})
	}
	a.nextStatic = base + uint64(count)*stride + SlabBytes
	return t, addrs
}

// carveInternal hands out allocator-internal objects (slab bookkeeping,
// array caches, pool headers) without simulated memory traffic; these are
// "boot time" allocations. Their runtime traffic comes from pool operations
// touching them afterwards.
func (a *Allocator) carveInternal(t *Type) uint64 {
	s := a.carve[t]
	if s == nil || s.inuse == s.nobj {
		base := a.nextMeta
		a.nextMeta += SlabBytes
		s = &slabInfo{
			t:       t,
			base:    base,
			objSize: t.objSize,
			nobj:    int(SlabBytes / t.objSize),
			home:    -1,
		}
		a.slabMap.set(base>>SlabShift, s)
		a.assignHome(base, SlabBytes, -1)
		a.carve[t] = s
	}
	addr := s.base + uint64(s.inuse)*s.objSize
	s.inuse++
	a.internalObjs = append(a.internalObjs, ObjRef{Type: t, Base: addr})
	return addr
}

// InternalObjects returns every allocator-internal object (slab bookkeeping,
// array caches, pool headers) carved so far. DProf seeds its address set
// with these: they are long-lived kernel objects with real cache traffic.
func (a *Allocator) InternalObjects() []ObjRef { return append([]ObjRef(nil), a.internalObjs...) }

// LiveObjects enumerates every currently-allocated dynamic object (excluding
// objects parked in per-CPU or alien caches, which are free from the
// caller's point of view). Profilers attaching mid-run use it to seed their
// address sets with objects allocated before attachment.
func (a *Allocator) LiveObjects() []ObjRef {
	cached := make(map[uint64]bool)
	for _, t := range a.typeOrder {
		if t.pool == nil {
			continue
		}
		for _, ac := range t.pool.perCPU {
			for _, o := range ac.objs {
				cached[o] = true
			}
		}
		for _, ac := range t.pool.alien {
			for _, o := range ac.objs {
				cached[o] = true
			}
		}
	}
	var out []ObjRef
	pages := a.slabMap.pages()
	sort.Slice(pages, func(i, j int) bool { return pages[i] < pages[j] })
	seen := make(map[*slabInfo]bool)
	for _, pg := range pages {
		s := a.slabMap.get(pg)
		if seen[s] || s.t.pool == nil {
			seen[s] = true
			continue
		}
		seen[s] = true
		free := make(map[uint64]bool, len(s.free))
		for _, o := range s.free {
			free[o] = true
		}
		for i := 0; i < s.nobj; i++ {
			addr := s.base + uint64(i)*s.objSize
			if !free[addr] && !cached[addr] {
				out = append(out, ObjRef{Type: s.t, Base: addr})
			}
		}
	}
	return out
}

// TypeByName returns a registered type, or nil.
func (a *Allocator) TypeByName(name string) *Type { return a.types[name] }

// Types returns all registered types in registration order.
func (a *Allocator) Types() []*Type { return append([]*Type(nil), a.typeOrder...) }

// OnAlloc registers a hook over every dynamic allocation.
func (a *Allocator) OnAlloc(h EventHook) { a.onAlloc = append(a.onAlloc, h) }

// OnFree registers a hook over every dynamic free.
func (a *Allocator) OnFree(h EventHook) { a.onFree = append(a.onFree, h) }

// WatchNextAlloc arranges for fn to run exactly once, when the next object of
// type t is allocated (after the allocation completes, before the caller uses
// the object). Watchers fire in FIFO order, one per allocation.
func (a *Allocator) WatchNextAlloc(t *Type, fn AllocWatcher) {
	a.watch[t] = append(a.watch[t], fn)
}

// growPool adds a fresh slab to the pool (Linux cache_grow), charging page
// allocation cost and initializing the slab bookkeeping object.
func (a *Allocator) growPool(c *sim.Ctx, p *pool, home int) *slabInfo {
	defer c.Leave(c.EnterPC(pcCacheGrow))
	base := a.nextSlab
	a.nextSlab += SlabBytes
	nobj := int(SlabBytes / p.t.objSize)
	if nobj == 0 {
		panic(fmt.Sprintf("mem: object size %d larger than slab", p.t.objSize))
	}
	s := &slabInfo{
		t:        p.t,
		base:     base,
		objSize:  p.t.objSize,
		nobj:     nobj,
		home:     home,
		metaAddr: a.carveInternal(a.slabType),
	}
	for i := nobj - 1; i >= 0; i-- {
		s.free = append(s.free, base+uint64(i)*s.objSize)
	}
	a.slabMap.set(base>>SlabShift, s)
	a.assignHome(base, SlabBytes, home)
	p.partial = append(p.partial, s)
	p.slabs++
	c.Compute(600)          // page allocator
	c.Write(s.metaAddr, 64) // initialize freelist bookkeeping
	// The fresh bookkeeping object is itself a typed allocation; report it
	// so profilers track the "slab" type's footprint (Table 6.1 lists it).
	for _, h := range a.onAlloc {
		h(c, a.slabType, s.metaAddr)
	}
	return s
}

// refill implements cache_alloc_refill: move a batch of objects from the
// pool's slabs into the calling core's array cache, under the pool lock.
func (a *Allocator) refill(c *sim.Ctx, p *pool, ac *arrayCache) {
	defer c.Leave(c.EnterPC(pcCacheAllocRefill))
	p.lock.Acquire(c)
	c.Read(p.kcAddr+64, 16) // pool freelist heads
	need := a.cfg.BatchCount
	var metas []uint64
	for need > 0 {
		var s *slabInfo
		for len(p.partial) > 0 {
			cand := p.partial[len(p.partial)-1]
			if len(cand.free) > 0 {
				s = cand
				break
			}
			p.partial = p.partial[:len(p.partial)-1]
		}
		if s == nil {
			s = a.growPool(c, p, c.Core.ID)
		}
		c.Read(s.metaAddr, 16) // slab freelist head + bufctl base
		for need > 0 && len(s.free) > 0 {
			obj := s.free[len(s.free)-1]
			s.free = s.free[:len(s.free)-1]
			s.inuse++
			ac.objs = append(ac.objs, obj)
			need--
		}
		metas = append(metas, s.metaAddr)
	}
	p.lock.Release(c)
	// Bookkeeping updates land after the release (see drainAlien).
	for _, meta := range metas {
		c.Write(meta, 16) // updated inuse/freelist
	}
}

// returnToSlab gives one object back to its slab's freelist (caller holds the
// pool lock).
func (a *Allocator) returnToSlab(c *sim.Ctx, p *pool, obj uint64) {
	s := a.slabMap.get(obj >> SlabShift)
	s.free = append(s.free, obj)
	s.inuse--
	c.Write(s.metaAddr, 16)
	if len(s.free) == 1 {
		p.partial = append(p.partial, s)
	}
}

// slabSeen reports whether s is already in the batch's touched list.
func slabSeen(touched []*slabInfo, s *slabInfo) bool {
	for _, t := range touched {
		if t == s {
			return true
		}
	}
	return false
}

// flushLocal spills a batch from an over-full local array cache back to the
// slabs (Linux cache_flusharray).
func (a *Allocator) flushLocal(c *sim.Ctx, p *pool, ac *arrayCache) {
	defer c.Leave(c.EnterPC(pcCacheFlusharray))
	p.lock.Acquire(c)
	n := a.cfg.BatchCount
	if n > len(ac.objs) {
		n = len(ac.objs)
	}
	c.Write(ac.addr, 8)
	// touched is a linear-scan list, not a map: a batch spans a handful of
	// distinct slabs and this runs on the free hot path.
	var touched []*slabInfo
	var metas []uint64
	for i := 0; i < n; i++ {
		obj := ac.objs[i]
		s := a.slabMap.get(obj >> SlabShift)
		s.free = append(s.free, obj)
		s.inuse--
		if !slabSeen(touched, s) {
			touched = append(touched, s)
			metas = append(metas, s.metaAddr)
		}
		if len(s.free) == 1 {
			p.partial = append(p.partial, s)
		}
	}
	ac.objs = append(ac.objs[:0], ac.objs[n:]...)
	p.lock.Release(c)
	for _, meta := range metas {
		c.Write(meta, 16)
	}
}

// drainAlien spills a full alien cache back to the home slabs
// (__drain_alien_cache). The alien array_cache line and the slab bookkeeping
// lines are written from the *freeing* core, which is what makes both types
// bounce between cores in the memcached case study. The pool lock is held
// only for the freelist splice; the per-slab bookkeeping writes are batched
// per distinct slab.
func (a *Allocator) drainAlien(c *sim.Ctx, p *pool, alien *arrayCache) {
	defer c.Leave(c.EnterPC(pcDrainAlienCache))
	objs := append([]uint64(nil), alien.objs...)
	alien.objs = alien.objs[:0]
	c.Read(alien.addr+16, 8)
	// The freelist splice happens under the pool lock; the per-slab
	// bookkeeping writes are issued after the release (they still generate
	// the slab-type coherence traffic Table 6.1 shows, without serializing
	// other cores behind this drain).
	p.lock.Acquire(c)
	c.Write(alien.addr, 8)
	var touched []*slabInfo
	var metas []uint64
	for _, obj := range objs {
		s := a.slabMap.get(obj >> SlabShift)
		s.free = append(s.free, obj)
		s.inuse--
		if !slabSeen(touched, s) {
			touched = append(touched, s)
			metas = append(metas, s.metaAddr)
		}
		if len(s.free) == 1 {
			p.partial = append(p.partial, s)
		}
	}
	p.lock.Release(c)
	for _, meta := range metas {
		c.Write(meta, 16)
	}
}

// Alloc allocates one object of type t on the calling core and returns its
// address. It performs the simulated memory accesses of the SLAB fast path
// (and of refill when the per-CPU cache is empty).
func (a *Allocator) Alloc(c *sim.Ctx, t *Type) uint64 {
	if t.pool == nil {
		panic(fmt.Sprintf("mem: Alloc of non-pool type %q", t.Name))
	}
	defer c.Leave(c.EnterPC(pcKmemCacheAllocNode))
	p := t.pool
	ac := p.perCPU[c.Core.ID]
	c.Read(ac.addr, 8) // avail counter
	if len(ac.objs) == 0 {
		a.refill(c, p, ac)
	}
	obj := ac.objs[len(ac.objs)-1]
	ac.objs = ac.objs[:len(ac.objs)-1]
	c.Write(ac.addr, 8)
	p.alloc++
	p.live++
	if p.live > p.peak {
		p.peak = p.live
	}
	for _, h := range a.onAlloc {
		h(c, t, obj)
	}
	if ws := a.watch[t]; len(ws) > 0 {
		fn := ws[0]
		a.watch[t] = ws[1:]
		fn(c, obj)
	}
	return obj
}

// Free returns an object to its pool. Objects freed on a core other than the
// slab's home core go through the alien cache.
func (a *Allocator) Free(c *sim.Ctx, addr uint64) {
	s := a.slabMap.get(addr >> SlabShift)
	if s == nil || s.t.pool == nil {
		panic(fmt.Sprintf("mem: Free of unknown address %#x", addr))
	}
	t := s.t
	p := t.pool
	defer c.Leave(c.EnterPC(pcKmemCacheFree))
	p.frees++
	if p.live == 0 {
		panic(fmt.Sprintf("mem: double free or free-without-alloc for type %q at %#x", t.Name, addr))
	}
	p.live--
	for _, h := range a.onFree {
		h(c, t, addr)
	}
	if s.home == c.Core.ID || s.home < 0 {
		ac := p.perCPU[c.Core.ID]
		c.Read(ac.addr, 8)
		ac.objs = append(ac.objs, addr)
		c.Write(ac.addr, 8)
		if len(ac.objs) > a.cfg.ArrayCacheCap {
			a.flushLocal(c, p, ac)
		}
		return
	}
	alien := p.alien[s.home]
	c.Read(alien.addr, 8)
	alien.objs = append(alien.objs, addr)
	c.Write(alien.addr, 8)
	if len(alien.objs) >= a.cfg.AlienCap {
		a.drainAlien(c, p, alien)
	}
}

// ObjRef identifies one object: its type and base address.
type ObjRef struct {
	Type *Type
	Base uint64
}

// Resolve maps a simulated address to its containing object. It returns the
// object's type, base address, and whether the address is typed at all.
// This is DProf's memory-type resolver (§5.2).
func (a *Allocator) Resolve(addr uint64) (t *Type, base uint64, ok bool) {
	s := a.slabMap.get(addr >> SlabShift)
	if s == nil {
		return nil, 0, false
	}
	if addr < s.base {
		return nil, 0, false
	}
	idx := (addr - s.base) / s.objSize
	if idx >= uint64(s.nobj) {
		return nil, 0, false
	}
	return s.t, s.base + idx*s.objSize, true
}

// ObjectsOnLine returns every object overlapping the cache line that starts
// at lineAddr. DProf's false-sharing analysis coalesces these objects into a
// single path trace (§4.3).
func (a *Allocator) ObjectsOnLine(lineAddr, lineSize uint64) []ObjRef {
	var out []ObjRef
	for addr := lineAddr; addr < lineAddr+lineSize; {
		t, base, ok := a.Resolve(addr)
		if !ok {
			addr += 8
			continue
		}
		out = append(out, ObjRef{Type: t, Base: base})
		addr = base + t.objSize
	}
	return out
}

// PoolStats reports a pool's allocation counters.
type PoolStats struct {
	Type      *Type
	Live      uint64
	Peak      uint64
	LiveBytes uint64
	PeakBytes uint64
	Allocs    uint64
	Frees     uint64
	Slabs     int
}

// Stats returns counters for every pool type, ordered by peak bytes.
func (a *Allocator) Stats() []PoolStats {
	var out []PoolStats
	for _, t := range a.typeOrder {
		if t.pool == nil {
			continue
		}
		p := t.pool
		out = append(out, PoolStats{
			Type:      t,
			Live:      p.live,
			Peak:      p.peak,
			LiveBytes: p.live * t.objSize,
			PeakBytes: p.peak * t.objSize,
			Allocs:    p.alloc,
			Frees:     p.frees,
			Slabs:     p.slabs,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].PeakBytes > out[j].PeakBytes })
	return out
}

// StatsFor returns counters for one type (zero value for non-pool types).
func (a *Allocator) StatsFor(t *Type) PoolStats {
	if t == nil || t.pool == nil {
		return PoolStats{Type: t}
	}
	p := t.pool
	return PoolStats{
		Type: t, Live: p.live, Peak: p.peak,
		LiveBytes: p.live * t.objSize, PeakBytes: p.peak * t.objSize,
		Allocs: p.alloc, Frees: p.frees, Slabs: p.slabs,
	}
}
