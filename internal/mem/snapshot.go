package mem

import (
	"dprof/internal/lockstat"
)

// Allocator implements sim.Snapshotter (registered by BindMachine): a warm
// checkpoint captures every pool's array caches, slab freelists, carving
// cursors, and counters, plus the lock registry's class statistics — the
// whole simulated memory subsystem. Slab bookkeeping objects keep pointer
// identity across Restore (partial lists and the page table reference them),
// so a snapshot may only be restored into the allocator it was taken from,
// matching sim.Snapshot's machine-bound semantics.

type allocState struct {
	pools     []poolState // by typeOrder index; zero value for non-pool types
	slabs     map[*slabInfo]slabState
	pageKeys  []uint64
	pageVals  []*slabInfo
	pageMask  uint64
	pageShift uint
	pageN     int

	nextSlab   uint64
	nextMeta   uint64
	nextStatic uint64
	nextNode   int

	carve     map[*Type]*slabInfo
	nStatics  int
	nInternal int
	nTypes    int

	watch    map[*Type][]AllocWatcher
	nOnAlloc int
	nOnFree  int

	locks lockstat.RegistryState
}

type poolState struct {
	perCPU  [][]uint64
	alien   [][]uint64
	partial []*slabInfo
	slabs   int
	live    uint64
	peak    uint64
	alloc   uint64
	frees   uint64
	lock    lockstat.LockState
}

type slabState struct {
	free  []uint64
	inuse int
}

// SnapshotState deep-copies the allocator's mutable state.
func (a *Allocator) SnapshotState() any {
	st := &allocState{
		pools:      make([]poolState, len(a.typeOrder)),
		slabs:      make(map[*slabInfo]slabState),
		pageKeys:   append([]uint64(nil), a.slabMap.keys...),
		pageVals:   append([]*slabInfo(nil), a.slabMap.vals...),
		pageMask:   a.slabMap.mask,
		pageShift:  a.slabMap.shift,
		pageN:      a.slabMap.n,
		nextSlab:   a.nextSlab,
		nextMeta:   a.nextMeta,
		nextStatic: a.nextStatic,
		nextNode:   a.nextNode,
		carve:      make(map[*Type]*slabInfo, len(a.carve)),
		nStatics:   len(a.statics),
		nInternal:  len(a.internalObjs),
		nTypes:     len(a.typeOrder),
		watch:      make(map[*Type][]AllocWatcher, len(a.watch)),
		nOnAlloc:   len(a.onAlloc),
		nOnFree:    len(a.onFree),
		locks:      a.locks.Checkpoint(),
	}
	snapSlab := func(s *slabInfo) {
		if _, ok := st.slabs[s]; !ok {
			st.slabs[s] = slabState{free: append([]uint64(nil), s.free...), inuse: s.inuse}
		}
	}
	for i, v := range a.slabMap.vals {
		if a.slabMap.keys[i] != 0 && v != nil {
			snapSlab(v)
		}
	}
	for i, t := range a.typeOrder {
		p := t.pool
		if p == nil {
			continue
		}
		ps := &st.pools[i]
		ps.perCPU = make([][]uint64, len(p.perCPU))
		for j, ac := range p.perCPU {
			ps.perCPU[j] = append([]uint64(nil), ac.objs...)
		}
		ps.alien = make([][]uint64, len(p.alien))
		for j, ac := range p.alien {
			ps.alien[j] = append([]uint64(nil), ac.objs...)
		}
		ps.partial = append([]*slabInfo(nil), p.partial...)
		ps.slabs = p.slabs
		ps.live, ps.peak, ps.alloc, ps.frees = p.live, p.peak, p.alloc, p.frees
		ps.lock = p.lock.State()
	}
	for t, s := range a.carve {
		st.carve[t] = s
	}
	for t, ws := range a.watch {
		st.watch[t] = append([]AllocWatcher(nil), ws...)
	}
	return st
}

// RestoreState rewinds the allocator to a state captured by SnapshotState.
// Types registered after the checkpoint keep existing but their pools are
// emptied (a deterministic re-run re-populates them the same way a cold run
// first populated them).
func (a *Allocator) RestoreState(state any) {
	st := state.(*allocState)
	a.slabMap.keys = append(a.slabMap.keys[:0], st.pageKeys...)
	a.slabMap.vals = append(a.slabMap.vals[:0], st.pageVals...)
	a.slabMap.mask = st.pageMask
	a.slabMap.shift = st.pageShift
	a.slabMap.n = st.pageN
	a.nextSlab = st.nextSlab
	a.nextMeta = st.nextMeta
	a.nextStatic = st.nextStatic
	a.nextNode = st.nextNode
	for s, ss := range st.slabs {
		s.free = append(s.free[:0], ss.free...)
		s.inuse = ss.inuse
	}
	for i, t := range a.typeOrder {
		p := t.pool
		if p == nil {
			continue
		}
		if i >= st.nTypes {
			for _, ac := range p.perCPU {
				ac.objs = ac.objs[:0]
			}
			for _, ac := range p.alien {
				ac.objs = ac.objs[:0]
			}
			p.partial = nil
			p.slabs = 0
			p.live, p.peak, p.alloc, p.frees = 0, 0, 0, 0
			continue
		}
		ps := &st.pools[i]
		for j, ac := range p.perCPU {
			ac.objs = append(ac.objs[:0], ps.perCPU[j]...)
		}
		for j, ac := range p.alien {
			ac.objs = append(ac.objs[:0], ps.alien[j]...)
		}
		p.partial = append(p.partial[:0], ps.partial...)
		p.slabs = ps.slabs
		p.live, p.peak, p.alloc, p.frees = ps.live, ps.peak, ps.alloc, ps.frees
		p.lock.SetState(ps.lock)
	}
	a.statics = a.statics[:st.nStatics]
	a.internalObjs = a.internalObjs[:st.nInternal]
	for t := range a.carve {
		delete(a.carve, t)
	}
	for t, s := range st.carve {
		a.carve[t] = s
	}
	for t := range a.watch {
		delete(a.watch, t)
	}
	for t, ws := range st.watch {
		a.watch[t] = append([]AllocWatcher(nil), ws...)
	}
	a.onAlloc = a.onAlloc[:st.nOnAlloc]
	a.onFree = a.onFree[:st.nOnFree]
	a.locks.Restore(st.locks)
}
