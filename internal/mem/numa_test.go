package mem

import (
	"testing"

	"dprof/internal/cache"
	"dprof/internal/lockstat"
	"dprof/internal/sim"
)

func numaMachine(t *testing.T, mcfg Config) (*sim.Machine, *Allocator) {
	t.Helper()
	scfg := sim.DefaultConfig()
	scfg.Cores = 0
	scfg.Topology = cache.Topology{Sockets: 4, CoresPerSocket: 4}
	m := sim.New(scfg)
	a := New(mcfg, m.NumCores(), lockstat.NewRegistry())
	a.BindMachine(m)
	return m, a
}

func allocOn(m *sim.Machine, a *Allocator, core int, typ *Type) uint64 {
	var addr uint64
	m.Schedule(core, m.MaxCoreTime(), func(c *sim.Ctx) { addr = a.Alloc(c, typ) })
	m.RunAll()
	return addr
}

func TestFirstTouchHomesSlabOnAllocatingSocket(t *testing.T) {
	m, a := numaMachine(t, DefaultConfig())
	typ := a.RegisterType("obj", 256, "")
	for _, core := range []int{0, 5, 14} {
		addr := allocOn(m, a, core, typ)
		want := m.Topology().SocketOf(core)
		if got := m.Hier.HomeOf(addr); got != want {
			t.Errorf("core %d: object %#x homed on node %d, want %d", core, addr, got, want)
		}
	}
}

func TestPinnedHomesEverySlabOnOneNode(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Policy = Pinned
	cfg.PinnedNode = 2
	m, a := numaMachine(t, cfg)
	typ := a.RegisterType("obj", 256, "")
	for _, core := range []int{0, 5, 14} {
		addr := allocOn(m, a, core, typ)
		if got := m.Hier.HomeOf(addr); got != 2 {
			t.Errorf("core %d: object %#x homed on node %d, want pinned node 2", core, addr, got)
		}
	}
}

func TestInterleaveRotatesNodes(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Policy = Interleave
	m, a := numaMachine(t, cfg)
	// Large objects: few per slab, so a handful of allocations span several
	// slabs and the round-robin shows through.
	typ := a.RegisterType("big", 2048, "")
	seen := make(map[int]bool)
	for i := 0; i < 32; i++ {
		addr := allocOn(m, a, 0, typ)
		home := m.Hier.HomeOf(addr)
		if home < 0 || home >= 4 {
			t.Fatalf("object %#x has home %d", addr, home)
		}
		seen[home] = true
	}
	if len(seen) != 4 {
		t.Errorf("interleave used nodes %v, want all 4", seen)
	}
}

func TestStaticsGetHomes(t *testing.T) {
	m, a := numaMachine(t, DefaultConfig())
	_, addr := a.Static("netdev", 512, "device")
	if got := m.Hier.HomeOf(addr); got != 0 {
		t.Errorf("boot-time static homed on %d, want node 0 under first-touch", got)
	}
}

func TestParsePolicy(t *testing.T) {
	for _, c := range []struct {
		in   string
		want Policy
		ok   bool
	}{
		{"firsttouch", FirstTouch, true},
		{"first-touch", FirstTouch, true},
		{"", FirstTouch, true},
		{"Interleave", Interleave, true},
		{"pinned", Pinned, true},
		{"bogus", FirstTouch, false},
	} {
		got, err := ParsePolicy(c.in)
		if (err == nil) != c.ok || (c.ok && got != c.want) {
			t.Errorf("ParsePolicy(%q) = %v, %v; want %v ok=%v", c.in, got, err, c.want, c.ok)
		}
	}
}
