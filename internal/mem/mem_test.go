package mem

import (
	"math/rand"
	"testing"
	"testing/quick"

	"dprof/internal/lockstat"
	"dprof/internal/sim"
)

func testWorld() (*sim.Machine, *Allocator) {
	m := sim.New(sim.Config{Cores: 4, Cache: sim.DefaultConfig().Cache, Seed: 7})
	locks := lockstat.NewRegistry()
	a := New(DefaultConfig(), m.NumCores(), locks)
	return m, a
}

func TestAllocFreeRoundTrip(t *testing.T) {
	m, a := testWorld()
	typ := a.RegisterType("widget", 192, "test widget")
	m.Schedule(0, 0, func(c *sim.Ctx) {
		addr := a.Alloc(c, typ)
		got, base, ok := a.Resolve(addr)
		if !ok || got != typ || base != addr {
			t.Errorf("Resolve(%#x) = (%v,%#x,%v)", addr, got, base, ok)
		}
		a.Free(c, addr)
	})
	m.RunAll()
	st := a.StatsFor(typ)
	if st.Allocs != 1 || st.Frees != 1 || st.Live != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestResolveInteriorPointer(t *testing.T) {
	m, a := testWorld()
	typ := a.RegisterType("box", 256, "")
	m.Schedule(0, 0, func(c *sim.Ctx) {
		addr := a.Alloc(c, typ)
		got, base, ok := a.Resolve(addr + 100)
		if !ok || got != typ || base != addr {
			t.Errorf("interior resolve failed: (%v, %#x, %v)", got, base, ok)
		}
	})
	m.RunAll()
}

func TestResolveUnknownAddress(t *testing.T) {
	_, a := testWorld()
	if _, _, ok := a.Resolve(0x7f00_dead_beef); ok {
		t.Fatal("resolved an address that was never allocated")
	}
}

func TestDistinctLiveObjectsDoNotOverlap(t *testing.T) {
	m, a := testWorld()
	typ := a.RegisterType("obj", 192, "")
	m.Schedule(0, 0, func(c *sim.Ctx) {
		seen := make(map[uint64]bool)
		for i := 0; i < 500; i++ {
			addr := a.Alloc(c, typ)
			for b := addr; b < addr+typ.ObjSize(); b += 64 {
				if seen[b] {
					t.Fatalf("object at %#x overlaps a live object", addr)
				}
				seen[b] = true
			}
		}
	})
	m.RunAll()
}

func TestLocalFreeReuse(t *testing.T) {
	m, a := testWorld()
	typ := a.RegisterType("r", 128, "")
	m.Schedule(0, 0, func(c *sim.Ctx) {
		addr := a.Alloc(c, typ)
		a.Free(c, addr)
		if again := a.Alloc(c, typ); again != addr {
			t.Errorf("LIFO per-CPU cache should reuse %#x, got %#x", addr, again)
		}
	})
	m.RunAll()
}

func TestAlienFreeGoesHome(t *testing.T) {
	m, a := testWorld()
	typ := a.RegisterType("pkt", 256, "")
	var addrs []uint64
	m.Schedule(0, 0, func(c *sim.Ctx) {
		for i := 0; i < 64; i++ {
			addrs = append(addrs, a.Alloc(c, typ))
		}
	})
	// Free everything from core 1: alien caches must drain without leaking.
	m.Schedule(1, 1000, func(c *sim.Ctx) {
		for _, addr := range addrs {
			a.Free(c, addr)
		}
	})
	m.RunAll()
	st := a.StatsFor(typ)
	if st.Live != 0 {
		t.Fatalf("live = %d after freeing everything", st.Live)
	}
	// The pool lock class must have seen the drain path.
	if a.locks.Class("SLAB cache lock").Acquisitions == 0 {
		t.Fatal("alien drain never took the pool lock")
	}
}

func TestDoubleFreePanics(t *testing.T) {
	m, a := testWorld()
	typ := a.RegisterType("d", 128, "")
	m.Schedule(0, 0, func(c *sim.Ctx) {
		addr := a.Alloc(c, typ)
		a.Free(c, addr)
		defer func() {
			if recover() == nil {
				t.Error("double free did not panic")
			}
		}()
		a.Free(c, addr)
	})
	m.RunAll()
}

func TestStaticObjects(t *testing.T) {
	_, a := testWorld()
	typ, addr := a.Static("net_device_t", 128, "device")
	got, base, ok := a.Resolve(addr + 64)
	if !ok || got != typ || base != addr {
		t.Fatalf("static resolve = (%v, %#x, %v)", got, base, ok)
	}
	if len(a.Statics()) != 1 {
		t.Fatalf("statics = %d, want 1", len(a.Statics()))
	}
}

func TestStaticArrayResolvesPerObject(t *testing.T) {
	_, a := testWorld()
	typ, addrs := a.StaticArray("qdisc_t", 256, 16, "queues")
	if len(addrs) != 16 {
		t.Fatalf("got %d addrs", len(addrs))
	}
	for i, addr := range addrs {
		got, base, ok := a.Resolve(addr + 10)
		if !ok || got != typ || base != addr {
			t.Fatalf("element %d resolve = (%v, %#x, %v)", i, got, base, ok)
		}
	}
	// A multi-page array must resolve in its later pages too.
	last := addrs[15]
	if _, base, ok := a.Resolve(last); !ok || base != last {
		t.Fatal("last element unresolvable")
	}
}

func TestMultiPageStatic(t *testing.T) {
	_, a := testWorld()
	typ, addr := a.Static("big", 3*SlabBytes+100, "spans pages")
	got, base, ok := a.Resolve(addr + 2*SlabBytes + 17)
	if !ok || got != typ || base != addr {
		t.Fatalf("multi-page resolve = (%v, %#x, %v)", got, base, ok)
	}
}

func TestSubLineAlignmentSharesLines(t *testing.T) {
	m, a := testWorld()
	typ := a.RegisterTypeAligned("stat", 16, "per-core counter", 16)
	if typ.ObjSize() != 16 {
		t.Fatalf("objSize = %d, want 16", typ.ObjSize())
	}
	m.Schedule(0, 0, func(c *sim.Ctx) {
		a1 := a.Alloc(c, typ)
		objs := a.ObjectsOnLine(a1&^63, 64)
		if len(objs) < 2 {
			t.Errorf("expected multiple objects on one line, got %d", len(objs))
		}
	})
	m.RunAll()
}

func TestObjectsOnLineLineAligned(t *testing.T) {
	m, a := testWorld()
	typ := a.RegisterType("aligned", 128, "")
	m.Schedule(0, 0, func(c *sim.Ctx) {
		addr := a.Alloc(c, typ)
		objs := a.ObjectsOnLine(addr, 64)
		if len(objs) != 1 || objs[0].Base != addr {
			t.Errorf("ObjectsOnLine = %v", objs)
		}
	})
	m.RunAll()
}

func TestWatchNextAllocFIFO(t *testing.T) {
	m, a := testWorld()
	typ := a.RegisterType("w", 128, "")
	var fired []int
	a.WatchNextAlloc(typ, func(c *sim.Ctx, addr uint64) { fired = append(fired, 1) })
	a.WatchNextAlloc(typ, func(c *sim.Ctx, addr uint64) { fired = append(fired, 2) })
	m.Schedule(0, 0, func(c *sim.Ctx) {
		a.Alloc(c, typ)
		a.Alloc(c, typ)
		a.Alloc(c, typ) // no watcher left
	})
	m.RunAll()
	if len(fired) != 2 || fired[0] != 1 || fired[1] != 2 {
		t.Fatalf("watchers fired = %v, want [1 2]", fired)
	}
}

func TestAllocHooks(t *testing.T) {
	m, a := testWorld()
	typ := a.RegisterType("hooked", 128, "")
	allocs, frees := 0, 0
	a.OnAlloc(func(c *sim.Ctx, tt *Type, addr uint64) {
		if tt == typ {
			allocs++
		}
	})
	a.OnFree(func(c *sim.Ctx, tt *Type, addr uint64) {
		if tt == typ {
			frees++
		}
	})
	m.Schedule(0, 0, func(c *sim.Ctx) {
		x := a.Alloc(c, typ)
		y := a.Alloc(c, typ)
		a.Free(c, x)
		a.Free(c, y)
	})
	m.RunAll()
	if allocs != 2 || frees != 2 {
		t.Fatalf("hooks saw %d allocs, %d frees", allocs, frees)
	}
}

func TestLiveObjects(t *testing.T) {
	m, a := testWorld()
	typ := a.RegisterType("live", 256, "")
	var keep []uint64
	m.Schedule(0, 0, func(c *sim.Ctx) {
		for i := 0; i < 20; i++ {
			addr := a.Alloc(c, typ)
			if i%2 == 0 {
				keep = append(keep, addr)
			} else {
				a.Free(c, addr)
			}
		}
	})
	m.RunAll()
	live := make(map[uint64]bool)
	for _, o := range a.LiveObjects() {
		if o.Type == typ {
			live[o.Base] = true
		}
	}
	if len(live) != len(keep) {
		t.Fatalf("LiveObjects reports %d, want %d", len(live), len(keep))
	}
	for _, addr := range keep {
		if !live[addr] {
			t.Fatalf("live object %#x missing", addr)
		}
	}
}

func TestInternalObjectsTyped(t *testing.T) {
	_, a := testWorld()
	a.RegisterType("anything", 128, "")
	foundAC := false
	for _, o := range a.InternalObjects() {
		if o.Type.Name == "array_cache" {
			foundAC = true
			if got, base, ok := a.Resolve(o.Base + 8); !ok || got != o.Type || base != o.Base {
				t.Fatal("array_cache object does not resolve")
			}
		}
	}
	if !foundAC {
		t.Fatal("no array_cache objects registered")
	}
}

func TestPeakTracksHighWater(t *testing.T) {
	m, a := testWorld()
	typ := a.RegisterType("peak", 128, "")
	m.Schedule(0, 0, func(c *sim.Ctx) {
		var addrs []uint64
		for i := 0; i < 10; i++ {
			addrs = append(addrs, a.Alloc(c, typ))
		}
		for _, x := range addrs {
			a.Free(c, x)
		}
		a.Alloc(c, typ)
	})
	m.RunAll()
	st := a.StatsFor(typ)
	if st.Peak != 10 || st.Live != 1 {
		t.Fatalf("peak=%d live=%d, want 10/1", st.Peak, st.Live)
	}
}

func TestDuplicateTypePanics(t *testing.T) {
	_, a := testWorld()
	a.RegisterType("dup", 64, "")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate type registration did not panic")
		}
	}()
	a.RegisterType("dup", 64, "")
}

func TestOversizeTypePanics(t *testing.T) {
	_, a := testWorld()
	defer func() {
		if recover() == nil {
			t.Fatal("oversize type did not panic")
		}
	}()
	a.RegisterType("huge", SlabBytes+1, "")
}

// TestQuickAllocFreeConservation: after arbitrary alloc/free interleavings,
// live counts match and every live object resolves to itself.
func TestQuickAllocFreeConservation(t *testing.T) {
	prop := func(seed int64, steps uint8) bool {
		m, a := testWorld()
		typ := a.RegisterType("q", 192, "")
		rng := rand.New(rand.NewSource(seed))
		var live []uint64
		ok := true
		m.Schedule(0, 0, func(c *sim.Ctx) {
			for i := 0; i < int(steps); i++ {
				if len(live) == 0 || rng.Intn(2) == 0 {
					live = append(live, a.Alloc(c, typ))
				} else {
					j := rng.Intn(len(live))
					a.Free(c, live[j])
					live = append(live[:j], live[j+1:]...)
				}
			}
			for _, addr := range live {
				if got, base, k := a.Resolve(addr); !k || got != typ || base != addr {
					ok = false
				}
			}
		})
		m.RunAll()
		return ok && a.StatsFor(typ).Live == uint64(len(live))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickResolveNeverCrossesObjects: Resolve of any offset inside an
// allocated object returns that object's base.
func TestQuickResolveNeverCrossesObjects(t *testing.T) {
	prop := func(off uint16) bool {
		m, a := testWorld()
		typ := a.RegisterType("rc", 320, "")
		result := true
		m.Schedule(0, 0, func(c *sim.Ctx) {
			addr := a.Alloc(c, typ)
			o := uint64(off) % typ.ObjSize()
			got, base, ok := a.Resolve(addr + o)
			result = ok && got == typ && base == addr
		})
		m.RunAll()
		return result
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
