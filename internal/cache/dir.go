package cache

// dirTable is the coherence directory: a map from line address to the bitmask
// of cores whose private caches hold the line. It is an open-addressed,
// linear-probing hash table specialized for the access pattern the hierarchy
// generates (lookup on every private miss, insert on every fill, delete on
// every last-copy eviction). Compared to a Go map it avoids the generic hash
// and bucket machinery on what profiling shows is ~15% of simulation time.
//
// Keys are stored as line+1 so the zero entry means "empty"; line addresses
// themselves may legitimately be zero.
type dirTable struct {
	entries []dirEntry
	mask    uint64
	n       int // occupied entries
	shift   uint
}

type dirEntry struct {
	key  uint64 // line+1; 0 = empty
	mask uint64 // holder core bitmask
}

// newDirTable returns a table with capacity for about cap entries before the
// first grow.
func newDirTable(capHint int) *dirTable {
	size := uint64(16)
	for int(size)*3/4 < capHint {
		size <<= 1
	}
	return &dirTable{
		entries: make([]dirEntry, size),
		mask:    size - 1,
		shift:   shiftFor(size),
	}
}

func shiftFor(size uint64) uint {
	s := uint(64)
	for size > 1 {
		size >>= 1
		s--
	}
	return s
}

// fibonacci multiplicative hashing constant (2^64 / phi, odd).
const dirHashMul = 0x9E3779B97F4A7C15

func (d *dirTable) slot(key uint64) uint64 { return (key * dirHashMul) >> d.shift }

// get returns the holder mask for line (0 if absent).
func (d *dirTable) get(line uint64) uint64 {
	key := line + 1
	for i := d.slot(key); ; i = (i + 1) & d.mask {
		e := &d.entries[i]
		if e.key == key {
			return e.mask
		}
		if e.key == 0 {
			return 0
		}
	}
}

// set stores mask for line; mask 0 deletes the entry.
func (d *dirTable) set(line uint64, mask uint64) {
	key := line + 1
	for i := d.slot(key); ; i = (i + 1) & d.mask {
		e := &d.entries[i]
		if e.key == key {
			if mask == 0 {
				d.del(i)
			} else {
				e.mask = mask
			}
			return
		}
		if e.key == 0 {
			if mask == 0 {
				return
			}
			e.key, e.mask = key, mask
			d.n++
			if uint64(d.n)*4 > uint64(len(d.entries))*3 {
				d.grow()
			}
			return
		}
	}
}

// andNot clears bits from line's holder mask in one probe — the combined
// form of get-then-set the eviction and invalidation paths want — deleting
// the entry if the mask empties. It returns the new mask (0 if the entry is
// gone or was never present).
func (d *dirTable) andNot(line uint64, bits uint64) uint64 {
	key := line + 1
	for i := d.slot(key); ; i = (i + 1) & d.mask {
		e := &d.entries[i]
		if e.key == key {
			e.mask &^= bits
			if e.mask == 0 {
				d.del(i)
				return 0
			}
			return e.mask
		}
		if e.key == 0 {
			return 0
		}
	}
}

// fetchOr merges bits into line's holder mask in one probe, creating the
// entry if needed, and returns the prior mask (0 if absent). It fuses the
// get-then-or pair the read-miss path performs on the same key.
func (d *dirTable) fetchOr(line uint64, bits uint64) uint64 {
	key := line + 1
	for i := d.slot(key); ; i = (i + 1) & d.mask {
		e := &d.entries[i]
		if e.key == key {
			old := e.mask
			e.mask |= bits
			return old
		}
		if e.key == 0 {
			e.key, e.mask = key, bits
			d.n++
			if uint64(d.n)*4 > uint64(len(d.entries))*3 {
				d.grow()
			}
			return 0
		}
	}
}

// swap replaces line's holder mask in one probe, creating the entry if
// needed, and returns the prior mask (0 if absent). mask must be non-zero.
// It fuses the get / clear-others / add-self probe triple the write paths
// perform on the same key.
func (d *dirTable) swap(line uint64, mask uint64) uint64 {
	key := line + 1
	for i := d.slot(key); ; i = (i + 1) & d.mask {
		e := &d.entries[i]
		if e.key == key {
			old := e.mask
			e.mask = mask
			return old
		}
		if e.key == 0 {
			e.key, e.mask = key, mask
			d.n++
			if uint64(d.n)*4 > uint64(len(d.entries))*3 {
				d.grow()
			}
			return 0
		}
	}
}

// or merges bits into line's holder mask, creating the entry if needed.
func (d *dirTable) or(line uint64, bits uint64) {
	key := line + 1
	for i := d.slot(key); ; i = (i + 1) & d.mask {
		e := &d.entries[i]
		if e.key == key {
			e.mask |= bits
			return
		}
		if e.key == 0 {
			e.key, e.mask = key, bits
			d.n++
			if uint64(d.n)*4 > uint64(len(d.entries))*3 {
				d.grow()
			}
			return
		}
	}
}

// del removes the entry at slot i using backward-shift deletion, which keeps
// probe chains contiguous without tombstones.
func (d *dirTable) del(i uint64) {
	d.n--
	for {
		d.entries[i] = dirEntry{}
		j := i
		for {
			j = (j + 1) & d.mask
			e := d.entries[j]
			if e.key == 0 {
				return
			}
			k := d.slot(e.key)
			// The entry at j may move back to i only if its ideal slot k is
			// cyclically outside (i, j]; otherwise the move would break its
			// probe chain.
			if (j-k)&d.mask >= (j-i)&d.mask {
				d.entries[i] = e
				i = j
				break
			}
		}
	}
}

func (d *dirTable) grow() {
	old := d.entries
	size := uint64(len(old)) * 2
	d.entries = make([]dirEntry, size)
	d.mask = size - 1
	d.shift = shiftFor(size)
	d.n = 0
	for _, e := range old {
		if e.key != 0 {
			d.or(e.key-1, e.mask)
		}
	}
}

// forEach visits every (line, mask) entry. Iteration order is unspecified;
// callers that need determinism must sort.
func (d *dirTable) forEach(fn func(line, mask uint64)) {
	for _, e := range d.entries {
		if e.key != 0 {
			fn(e.key-1, e.mask)
		}
	}
}

// lineSet is an open-addressed set of line addresses, used as a presence
// index in front of wide (16/32-way) cache banks: a miss resolves with one
// hash probe instead of scanning every way of the set. Same layout rules as
// dirTable: keys are line+1 so 0 means empty, linear probing, backward-shift
// deletion.
type lineSet struct {
	keys  []uint64
	mask  uint64
	n     int
	shift uint
}

func newLineSet() *lineSet {
	const size = 1 << 10
	return &lineSet{keys: make([]uint64, size), mask: size - 1, shift: shiftFor(size)}
}

func (s *lineSet) slot(key uint64) uint64 { return (key * dirHashMul) >> s.shift }

func (s *lineSet) has(line uint64) bool {
	key := line + 1
	for i := s.slot(key); ; i = (i + 1) & s.mask {
		k := s.keys[i]
		if k == key {
			return true
		}
		if k == 0 {
			return false
		}
	}
}

// add inserts line; it is idempotent.
func (s *lineSet) add(line uint64) {
	key := line + 1
	for i := s.slot(key); ; i = (i + 1) & s.mask {
		k := s.keys[i]
		if k == key {
			return
		}
		if k == 0 {
			s.keys[i] = key
			s.n++
			if uint64(s.n)*4 > uint64(len(s.keys))*3 {
				s.grow()
			}
			return
		}
	}
}

// del removes line if present (backward-shift deletion).
func (s *lineSet) del(line uint64) {
	key := line + 1
	i := s.slot(key)
	for {
		k := s.keys[i]
		if k == key {
			break
		}
		if k == 0 {
			return
		}
		i = (i + 1) & s.mask
	}
	s.n--
	for {
		s.keys[i] = 0
		j := i
		for {
			j = (j + 1) & s.mask
			k := s.keys[j]
			if k == 0 {
				return
			}
			ideal := s.slot(k)
			if (j-ideal)&s.mask >= (j-i)&s.mask {
				s.keys[i] = k
				i = j
				break
			}
		}
	}
}

func (s *lineSet) grow() {
	old := s.keys
	size := uint64(len(old)) * 2
	s.keys = make([]uint64, size)
	s.mask = size - 1
	s.shift = shiftFor(size)
	s.n = 0
	for _, k := range old {
		if k != 0 {
			s.add(k - 1)
		}
	}
}
