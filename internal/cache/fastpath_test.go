package cache

// Tests for the private-line MRU fast path: when it arms, when foreign
// accesses and evictions disarm it, and that the filtered hierarchy evolves
// byte-identically to the reference (unfiltered) hierarchy.

import (
	"math/rand"
	"testing"
)

func fastPathPair(n int) (opt, ref *Hierarchy) {
	cfg := DefaultConfig()
	opt = New(cfg, n)
	ref = New(cfg, n)
	ref.SetReference(true)
	return opt, ref
}

func TestFastPathArmsOnPrivateHit(t *testing.T) {
	h := New(DefaultConfig(), 2)
	const addr = 0x4000
	h.Access(0, addr, true) // cold write: fill Modified, no private hit yet
	if h.MRUArmed(0, addr) {
		t.Fatal("filter armed by a fill (no private hit yet)")
	}
	h.Access(0, addr, false) // L1 hit in M: arms
	if !h.MRUArmed(0, addr) {
		t.Fatal("filter not armed by an M-state L1 hit")
	}
	if r := h.Access(0, addr, false); r.Level != L1Hit {
		t.Fatalf("fast-path read level = %v, want L1", r.Level)
	}
	if r := h.Access(0, addr, true); r.Level != L1Hit {
		t.Fatalf("fast-path write level = %v, want L1", r.Level)
	}
}

func TestFastPathInvalidatedByForeignWrite(t *testing.T) {
	h := New(DefaultConfig(), 2)
	const addr = 0x4000
	h.Access(0, addr, true)
	h.Access(0, addr, true) // private M hit: arms
	if !h.MRUArmed(0, addr) {
		t.Fatal("filter not armed")
	}
	h.Access(1, addr, true) // foreign write invalidates core 0's copy
	if h.MRUArmed(0, addr) {
		t.Fatal("filter still armed after foreign write invalidated the line")
	}
	// Core 0 must now pay the foreign transfer, not a phantom L1 hit.
	if r := h.Access(0, addr, false); r.Level != ForeignHit {
		t.Fatalf("post-invalidation access level = %v, want foreign", r.Level)
	}
	if got := h.CoreStats(0).InvalsRecv; got != 1 {
		t.Fatalf("core 0 InvalsRecv = %d, want 1", got)
	}
	if err := h.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestFastPathInvalidatedByForeignRead(t *testing.T) {
	h := New(DefaultConfig(), 2)
	const addr = 0x8000
	h.Access(0, addr, true)
	h.Access(0, addr, false) // arms in M
	if !h.MRUArmed(0, addr) {
		t.Fatal("filter not armed")
	}
	h.Access(1, addr, false) // foreign read downgrades core 0 to Shared
	if h.MRUArmed(0, addr) {
		t.Fatal("filter still armed after downgrade to Shared")
	}
	// A write by core 0 must now take the slow upgrade path and invalidate
	// core 1's copy.
	h.Access(0, addr, true)
	if got := h.CoreStats(0).Upgrades; got != 1 {
		t.Fatalf("core 0 Upgrades = %d, want 1 (slow upgrade path)", got)
	}
	if got := h.CoreStats(1).InvalsRecv; got != 1 {
		t.Fatalf("core 1 InvalsRecv = %d, want 1", got)
	}
	if err := h.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestFastPathInvalidatedByEviction(t *testing.T) {
	cfg := DefaultConfig()
	h := New(cfg, 1)
	const addr = 0x10000
	h.Access(0, addr, true)
	h.Access(0, addr, true) // arms
	if !h.MRUArmed(0, addr) {
		t.Fatal("filter not armed")
	}
	// Thrash the line's L2 set until the armed line is evicted: lines that
	// map to the same L2 set differ by l2Sets * lineSize strides.
	l2Sets := cfg.L2Size / cfg.LineSize / uint64(cfg.L2Ways)
	stride := l2Sets * cfg.LineSize
	for i := 1; i <= cfg.L2Ways+1; i++ {
		h.Access(0, addr+uint64(i)*stride, true)
	}
	if h.MRUArmed(0, addr) {
		t.Fatal("filter still armed after the line was evicted from L2")
	}
	if lv := h.Probe(0, addr); lv == L1Hit || lv == L2Hit {
		t.Fatalf("line still private after conflict thrash: %v", lv)
	}
	if err := h.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestFastPathReferenceEquivalenceRandom(t *testing.T) {
	// Differential fuzz: an identical random access stream must produce an
	// identical Result sequence, identical per-core counters, and identical
	// invariant-checked state with the fast path on and off.
	const cores = 4
	opt, ref := fastPathPair(cores)
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 200_000; i++ {
		core := rng.Intn(cores)
		// A small footprint with heavy reuse so all paths fire: private
		// re-hits (fast path), sharing, upgrades, conflict evictions.
		addr := uint64(rng.Intn(1<<14)) &^ 7
		write := rng.Intn(3) == 0
		ro := opt.Access(core, addr, write)
		rr := ref.Access(core, addr, write)
		if ro != rr {
			t.Fatalf("access %d (core %d addr %#x write %v): optimized %+v != reference %+v",
				i, core, addr, write, ro, rr)
		}
	}
	for c := 0; c < cores; c++ {
		if opt.CoreStats(c) != ref.CoreStats(c) {
			t.Fatalf("core %d stats diverged:\noptimized %+v\nreference %+v",
				c, opt.CoreStats(c), ref.CoreStats(c))
		}
	}
	if err := opt.CheckInvariants(); err != nil {
		t.Fatalf("optimized invariants: %v", err)
	}
	if err := ref.CheckInvariants(); err != nil {
		t.Fatalf("reference invariants: %v", err)
	}
}

func TestFastPathReferenceEquivalenceConflictHeavy(t *testing.T) {
	// Same differential, but with a strided pattern engineered to evict
	// constantly (exercising the eviction invalidation path and LRU-tick
	// exactness rather than steady-state hits).
	const cores = 2
	opt, ref := fastPathPair(cores)
	cfg := opt.Config()
	l1Sets := cfg.L1Size / cfg.LineSize / uint64(cfg.L1Ways)
	stride := l1Sets * cfg.LineSize
	for i := 0; i < 50_000; i++ {
		core := i % cores
		addr := uint64(i%8) * stride // 8 ways fighting over 2-way L1 sets
		write := i%2 == 0
		ro := opt.Access(core, addr, write)
		rr := ref.Access(core, addr, write)
		if ro != rr {
			t.Fatalf("access %d: optimized %+v != reference %+v", i, ro, rr)
		}
	}
	if opt.Totals() != ref.Totals() {
		t.Fatalf("totals diverged:\noptimized %+v\nreference %+v", opt.Totals(), ref.Totals())
	}
}
