// Package cache simulates a multicore CPU cache hierarchy.
//
// The model follows the machine used in the DProf paper (a 16-core AMD
// system): each core has a private, inclusive L1d+L2 pair; the cores on each
// chip share a non-inclusive victim L3 bank (AMD's L3 is a victim cache);
// coherence across the private hierarchies is kept with a directory-based
// MESI protocol. A Topology (sockets x cores-per-socket) splits the machine
// into chips: foreign transfers between chips and fills from another
// socket's memory node pay distinct cross-chip latencies, while the default
// single-socket topology reproduces the flat hierarchy exactly. Latencies
// are configurable and default to the values the paper reports (3 ns L1 hits,
// 200 ns foreign-cache transfers, with 1 cycle == 1 ns at the simulated 1 GHz
// clock).
//
// The hierarchy is the component that *produces* the phenomena DProf
// diagnoses: invalidation misses (true/false sharing) come from MESI
// write-invalidations, conflict misses from finite set associativity, and
// capacity misses from finite total size.
package cache

import (
	"fmt"
	"math/bits"
)

// Level classifies where an access was satisfied.
type Level uint8

const (
	// L1Hit means the access hit in the core's private L1.
	L1Hit Level = iota
	// L2Hit means the access missed L1 but hit the core's private L2.
	L2Hit
	// L3Hit means the access was satisfied by the shared victim L3.
	L3Hit
	// ForeignHit means the line was transferred from another core's
	// private cache on the same chip (the expensive cross-core case DProf
	// highlights). On the single-socket topology every foreign transfer is
	// a ForeignHit.
	ForeignHit
	// ForeignRemote means the line came from a cache on a different chip —
	// a cross-chip (HyperTransport) transfer, costlier than an on-chip one.
	ForeignRemote
	// DRAM means the access went to the socket's local memory node.
	DRAM
	// DRAMRemote means the access went to memory homed on a different
	// socket (a remote NUMA node).
	DRAMRemote
	numLevels
)

// String returns the conventional name of the level.
func (l Level) String() string {
	switch l {
	case L1Hit:
		return "L1"
	case L2Hit:
		return "L2"
	case L3Hit:
		return "L3"
	case ForeignHit:
		return "foreign"
	case ForeignRemote:
		return "cross-chip"
	case DRAM:
		return "DRAM"
	case DRAMRemote:
		return "remote-DRAM"
	}
	return fmt.Sprintf("Level(%d)", uint8(l))
}

// NumLevels is the number of distinct Level values.
const NumLevels = int(numLevels)

// MaxCores bounds the number of cores a Hierarchy supports (directory entries
// store holders as a 64-bit mask).
const MaxCores = 64

// Config describes the geometry and latency of the hierarchy.
type Config struct {
	LineSize uint64 // bytes per cache line; must be a power of two

	L1Size uint64 // bytes per core
	L1Ways int
	L2Size uint64 // bytes per core
	L2Ways int
	L3Size uint64 // bytes, shared
	L3Ways int

	// Latencies, in cycles, of an access satisfied at each point.
	// LatForeign and LatDRAM are the on-chip / local-node costs; the
	// Remote variants price the cross-chip interconnect hop and only
	// engage on multi-socket topologies.
	LatL1            uint32
	LatL2            uint32
	LatL3            uint32
	LatForeign       uint32
	LatForeignRemote uint32
	LatDRAM          uint32
	LatDRAMRemote    uint32

	// Snoop switches coherence lookups from the directory to scanning all
	// other cores' private caches. Results are identical; this exists for
	// the directory-vs-snoop ablation benchmark.
	Snoop bool
}

// DefaultConfig returns the paper machine's geometry: 64 KB 2-way L1d and
// 512 KB 16-way L2 per core, a 16 MB 32-way shared victim L3 (the paper's
// four-socket AMD box has 4 x 4-6 MB of L3), 64-byte lines, and the paper's
// latencies (1 cycle == 1 ns).
func DefaultConfig() Config {
	return Config{
		LineSize:         64,
		L1Size:           64 << 10,
		L1Ways:           2,
		L2Size:           512 << 10,
		L2Ways:           16,
		L3Size:           16 << 20,
		L3Ways:           32,
		LatL1:            3,
		LatL2:            14,
		LatL3:            38,
		LatForeign:       200,
		LatForeignRemote: 300,
		LatDRAM:          250,
		LatDRAMRemote:    350,
	}
}

// Validate reports whether the configuration is internally consistent.
func (c Config) Validate() error {
	if c.LineSize == 0 || c.LineSize&(c.LineSize-1) != 0 {
		return fmt.Errorf("cache: line size %d is not a power of two", c.LineSize)
	}
	for _, lv := range []struct {
		name string
		size uint64
		ways int
	}{{"L1", c.L1Size, c.L1Ways}, {"L2", c.L2Size, c.L2Ways}, {"L3", c.L3Size, c.L3Ways}} {
		if lv.ways <= 0 {
			return fmt.Errorf("cache: %s ways must be positive", lv.name)
		}
		lines := lv.size / c.LineSize
		if lines == 0 || lines%uint64(lv.ways) != 0 {
			return fmt.Errorf("cache: %s size %d does not divide into %d ways of %d-byte lines",
				lv.name, lv.size, lv.ways, c.LineSize)
		}
		sets := lines / uint64(lv.ways)
		if sets&(sets-1) != 0 {
			return fmt.Errorf("cache: %s set count %d is not a power of two", lv.name, sets)
		}
	}
	return nil
}

// Result describes the outcome of one line access.
type Result struct {
	Level   Level
	Latency uint32
}

type mesi uint8

const (
	invalid mesi = iota
	shared
	exclusive
	modified
)

// way is one cache way, packed to 16 bytes: the MESI state lives in the low
// two bits of tag and the line address (addr >> lineShift) in the rest, so
// tag == line<<2 | state and a zero tag means invalid. Halving a 16-way L2
// set scan from six cache lines to four (and an L3 scan proportionally) is
// worth the two-bit shift on every tag compare — the set scans are among
// the hottest loops in the simulator.
type way struct {
	tag uint64
	lru uint64
}

// wayTag builds the packed tag for line held in state st.
func wayTag(line uint64, st mesi) uint64 { return line<<2 | uint64(st) }

func (w way) line() uint64 { return w.tag >> 2 }
func (w way) state() mesi  { return mesi(w.tag & 3) }

// matches reports whether the way holds line in any valid state. base must
// be line<<2; the xor folds the line compare and the state!=invalid check
// into one branch (xor result 0 would mean "line matches but invalid", 1-3
// "matches, valid", ≥4 "different line").
func (w way) matches(base uint64) bool { return (w.tag^base)-1 < 3 }

func (w *way) setState(st mesi) { w.tag = w.tag&^3 | uint64(st) }

// bank is one set-associative cache array. Ways are stored flat — set i
// occupies ways[i*nways : (i+1)*nways] — so a set probe is one indexed load
// into a single contiguous allocation instead of a pointer chase through a
// slice of slices; the hot fastHit slot-0 probe and every set scan benefit.
// Banks carry no presence index of their own (see newBank); the hierarchy's
// l3pres table answers L3 presence for all sockets with one probe.
type bank struct {
	ways    []way
	setMask uint64
	nways   uint64
	tick    uint64
}

// set returns the ways of line's set.
func (b *bank) set(line uint64) []way {
	base := (line & b.setMask) * b.nways
	return b.ways[base : base+b.nways]
}

// nsets is the number of sets in the bank.
func (b *bank) nsets() int { return int(b.setMask + 1) }

// No bank carries its own presence index. The L2 is hit-heavy — every L1
// miss that hits L2 would pay the probe on top of the scan, and every fill
// would pay the index maintenance (measured as a clear loss). The L3 banks
// used to carry one, but the hierarchy-wide l3pres table now answers "which
// socket's L3 holds this line" in a single probe, so every per-bank L3 call
// is already known to hit and a local index would only add overhead.
func newBank(size uint64, ways int, lineSize uint64) bank {
	nsets := size / lineSize / uint64(ways)
	return bank{
		ways:    make([]way, nsets*uint64(ways)),
		setMask: nsets - 1,
		nways:   uint64(ways),
	}
}

// lookup returns the way holding line, or nil. A hit is swapped to slot 0
// (move-to-front) so repeat lookups of hot lines touch one slot instead of
// scanning the whole set; eviction order is unaffected because LRU is
// tracked by the lru tick, not by position.
func (b *bank) lookup(line uint64) *way {
	set := b.set(line)
	base := line << 2
	for i := range set {
		if set[i].matches(base) {
			b.tick++
			set[i].lru = b.tick
			if i != 0 {
				set[0], set[i] = set[i], set[0]
				return &set[0]
			}
			return &set[i]
		}
	}
	return nil
}

// insert places line into its set with the given state and returns the evicted
// victim (state != invalid) if one was displaced.
func (b *bank) insert(line uint64, st mesi) (victim way) {
	set := b.set(line)
	b.tick++
	// Prefer an invalid slot; otherwise evict the LRU way. minLRU is kept
	// in a register so the scan does one load per way, not two.
	vi := 0
	minLRU := set[0].lru
	if set[0].tag&3 != 0 {
		for i := 1; i < len(set); i++ {
			if set[i].tag&3 == 0 {
				vi = i
				break
			}
			if set[i].lru < minLRU {
				minLRU = set[i].lru
				vi = i
			}
		}
	}
	victim = set[vi]
	set[vi] = way{tag: wayTag(line, st), lru: b.tick}
	if victim.tag&3 == 0 {
		return way{}
	}
	return victim
}

// invalidate removes line if present and returns its previous state.
func (b *bank) invalidate(line uint64) mesi {
	set := b.set(line)
	base := line << 2
	for i := range set {
		if set[i].matches(base) {
			st := set[i].state()
			set[i].tag &^= 3
			return st
		}
	}
	return invalid
}

// setState updates the state of line if present.
func (b *bank) setState(line uint64, st mesi) bool {
	set := b.set(line)
	base := line << 2
	for i := range set {
		if set[i].matches(base) {
			set[i].setState(st)
			return true
		}
	}
	return false
}

// Stats accumulates per-core access counters.
type Stats struct {
	Accesses          uint64
	Writes            uint64
	L1Hits            uint64
	L2Hits            uint64
	L3Hits            uint64
	ForeignHits       uint64 // on-chip foreign-cache transfers
	ForeignRemoteHits uint64 // cross-chip foreign-cache transfers
	DRAMFills         uint64 // fills from the local memory node
	DRAMRemoteFills   uint64 // fills from a remote socket's memory node
	Upgrades          uint64 // writes that had to invalidate sharers
	InvalsSent        uint64 // lines invalidated in other cores by this core's writes
	InvalsRecv        uint64 // lines invalidated in this core by other cores' writes
	WritebacksL3      uint64 // modified lines evicted from private L2 into L3
	LatencySum        uint64
}

// L1Misses is the count of accesses not satisfied by the local L1.
func (s *Stats) L1Misses() uint64 { return s.Accesses - s.L1Hits }

// Add accumulates o into s.
func (s *Stats) Add(o *Stats) {
	s.Accesses += o.Accesses
	s.Writes += o.Writes
	s.L1Hits += o.L1Hits
	s.L2Hits += o.L2Hits
	s.L3Hits += o.L3Hits
	s.ForeignHits += o.ForeignHits
	s.ForeignRemoteHits += o.ForeignRemoteHits
	s.DRAMFills += o.DRAMFills
	s.DRAMRemoteFills += o.DRAMRemoteFills
	s.Upgrades += o.Upgrades
	s.InvalsSent += o.InvalsSent
	s.InvalsRecv += o.InvalsRecv
	s.WritebacksL3 += o.WritebacksL3
	s.LatencySum += o.LatencySum
}

// priv is one core's private L1+L2 pair. Inclusion: every valid L1 line is
// also present in L2 (same state, conservatively).
// priv is one core's private cache pair. The banks are stored by value so
// the hot probes reach the way arrays through one indirection (the cores
// slice) instead of chasing per-bank pointers.
type priv struct {
	l1 bank
	l2 bank
}

// HomeGranule is the granularity of NUMA home-node assignment: one 4 KB
// page, matching the allocator's slab size.
const HomeGranule = 4096

const homeGranuleShift = 12

// mruLine is one core's private-line MRU filter entry: the line address the
// core most recently hit in its private hierarchy. The fast path itself
// self-validates against the L1/L2 sets (see fastHit), so the filter is a
// precisely-maintained invariant rather than the gate: any foreign access
// to the line — invalidation, downgrade to Shared — and any eviction from
// the core's own L2 clears it, which the fastpath tests verify directly.
type mruLine struct {
	line  uint64
	valid bool
}

// Hierarchy is the full simulated cache system.
type Hierarchy struct {
	cfg       Config
	topo      Topology
	lineShift uint
	cores     []priv
	socket    []int     // core -> socket (cached topo.SocketOf)
	sockMask  []uint64  // socket -> bitmask of its cores
	l3s       []bank    // one victim L3 bank per socket
	dir       *dirTable // line -> holders bitmask (private caches)
	// l3pres indexes all L3 banks at once: line -> bitmask of sockets whose
	// victim bank holds the line. The miss path consults every socket's L3,
	// and on the dominant DRAM-bound misses each per-bank probe is a cache
	// miss of its own; one probe here answers for all sockets. It is a pure
	// presence index — the banks stay the source of truth, and entries are
	// maintained at the four places L3 contents change (victim spill, the
	// two migrate-on-hit paths, and invalidateL3).
	l3pres *dirTable
	stats  []Stats
	// mru is the per-core private-line MRU filter (see mruLine); reference
	// disables it (and keeps it cleared) so the equivalence suite can run
	// the unfiltered paths.
	mru       []mruLine
	reference bool
	// lat caches the per-level latency so hot paths index a table instead of
	// switching, and hitCtr[core][lv] points at the Stats counter a hit at
	// that level bumps (stats is allocated once and ResetStats overwrites
	// elements in place, so the pointers stay valid for the hierarchy's
	// lifetime).
	lat    [NumLevels]uint32
	hitCtr [][NumLevels]*uint64
	// homes maps HomeGranule-sized pages to the socket whose memory node
	// owns them (stored as socket+1 in a dirTable so 0 keeps meaning
	// "unmapped"). Empty (and never consulted) on single-socket topologies;
	// unmapped pages count as node-local. An open-addressed table rather
	// than a Go map because the DRAM-bound misses that dominate the slow
	// path consult it on every fill.
	homes *dirTable
	// perSetFills counts L1 fills per set index, summed over cores. Used by
	// tests and the conflict-miss ablation; cheap (one add per fill).
	perSetFills []uint64
}

// New builds a single-socket hierarchy for n cores. It panics on invalid
// configuration (configurations are programmer-supplied constants, not
// runtime input).
func New(cfg Config, n int) *Hierarchy {
	return NewTopo(cfg, SingleSocket(n))
}

// ValidateTopo reports whether the configuration can be banked across the
// given topology: the machine-total L3 must split evenly into per-socket
// banks that are themselves a valid geometry. Callers turning runtime input
// into a topology (CLI flags, sweeps) should check this before NewTopo,
// which panics on failure.
func (c Config) ValidateTopo(topo Topology) error {
	if err := topo.Validate(); err != nil {
		return err
	}
	if c.L3Size%uint64(topo.Sockets) != 0 {
		return fmt.Errorf("cache: L3 size %d does not split across %d sockets", c.L3Size, topo.Sockets)
	}
	perSocket := c
	perSocket.L3Size = c.L3Size / uint64(topo.Sockets)
	return perSocket.Validate()
}

// NewTopo builds a hierarchy with the given socket topology. Each socket
// gets its own L3 victim bank of L3Size/Sockets bytes (the config's L3Size
// stays the machine total), so the single-socket topology is byte-identical
// to the pre-topology hierarchy. Cross-chip transfers cost LatForeignRemote
// and remote-node memory fills LatDRAMRemote; both fall back to their local
// counterparts when unset.
func NewTopo(cfg Config, topo Topology) *Hierarchy {
	if cfg.LatForeignRemote == 0 {
		cfg.LatForeignRemote = cfg.LatForeign
	}
	if cfg.LatDRAMRemote == 0 {
		cfg.LatDRAMRemote = cfg.LatDRAM
	}
	if err := cfg.ValidateTopo(topo); err != nil {
		panic(err)
	}
	n := topo.NumCores()
	shift := uint(0)
	for 1<<shift != cfg.LineSize {
		shift++
	}
	h := &Hierarchy{
		cfg:       cfg,
		topo:      topo,
		lineShift: shift,
		cores:     make([]priv, n),
		socket:    make([]int, n),
		sockMask:  make([]uint64, topo.Sockets),
		l3s:       make([]bank, topo.Sockets),
		dir:       newDirTable(1 << 16),
		l3pres:    newDirTable(1 << 12),
		stats:     make([]Stats, n),
		mru:       make([]mruLine, n),
		homes:     newDirTable(1 << 10),
	}
	h.lat = [NumLevels]uint32{
		L1Hit:         cfg.LatL1,
		L2Hit:         cfg.LatL2,
		L3Hit:         cfg.LatL3,
		ForeignHit:    cfg.LatForeign,
		ForeignRemote: cfg.LatForeignRemote,
		DRAM:          cfg.LatDRAM,
		DRAMRemote:    cfg.LatDRAMRemote,
	}
	h.hitCtr = make([][NumLevels]*uint64, n)
	for i := range h.hitCtr {
		st := &h.stats[i]
		h.hitCtr[i] = [NumLevels]*uint64{
			L1Hit:         &st.L1Hits,
			L2Hit:         &st.L2Hits,
			L3Hit:         &st.L3Hits,
			ForeignHit:    &st.ForeignHits,
			ForeignRemote: &st.ForeignRemoteHits,
			DRAM:          &st.DRAMFills,
			DRAMRemote:    &st.DRAMRemoteFills,
		}
	}
	for s := range h.l3s {
		h.l3s[s] = newBank(cfg.L3Size/uint64(topo.Sockets), cfg.L3Ways, cfg.LineSize)
	}
	for i := range h.cores {
		h.cores[i] = priv{
			l1: newBank(cfg.L1Size, cfg.L1Ways, cfg.LineSize),
			l2: newBank(cfg.L2Size, cfg.L2Ways, cfg.LineSize),
		}
		h.socket[i] = topo.SocketOf(i)
		h.sockMask[h.socket[i]] |= 1 << uint(i)
	}
	h.perSetFills = make([]uint64, h.cores[0].l1.nsets())
	return h
}

// Config returns the hierarchy's configuration.
func (h *Hierarchy) Config() Config { return h.cfg }

// Topology returns the hierarchy's socket layout.
func (h *Hierarchy) Topology() Topology { return h.topo }

// NumCores returns the number of private cache pairs.
func (h *Hierarchy) NumCores() int { return len(h.cores) }

// SetPageHome assigns the HomeGranule-sized page containing addr to a
// socket's memory node. The allocator calls this as its home-node policy
// places fresh slabs; accesses to unmapped pages are treated as node-local.
func (h *Hierarchy) SetPageHome(addr uint64, socket int) {
	if socket < 0 || socket >= h.topo.Sockets {
		panic(fmt.Sprintf("cache: page home socket %d out of range [0,%d)", socket, h.topo.Sockets))
	}
	if h.topo.Sockets == 1 {
		return // single memory node; nothing to record
	}
	h.homes.set(addr>>homeGranuleShift, uint64(socket)+1)
}

// HomeOf returns the socket whose memory node owns addr's page, or -1 when
// no home was assigned (treated as local to every socket).
func (h *Hierarchy) HomeOf(addr uint64) int {
	if v := h.homes.get(addr >> homeGranuleShift); v != 0 {
		return int(v - 1)
	}
	return -1
}

// isRemoteHome reports whether addr's page is homed on a socket other than
// the given one. Unmapped pages (and single-socket machines) are local.
func (h *Hierarchy) isRemoteHome(addr uint64, socket int) bool {
	if h.topo.Sockets == 1 {
		return false
	}
	v := h.homes.get(addr >> homeGranuleShift)
	return v != 0 && int(v-1) != socket
}

// LineOf returns the line address (addr with the offset bits dropped).
func (h *Hierarchy) LineOf(addr uint64) uint64 { return addr >> h.lineShift }

// L1Sets returns the number of associativity sets in each L1.
func (h *Hierarchy) L1Sets() int { return h.cores[0].l1.nsets() }

// L1SetOf returns the L1 associativity set index addr maps to.
func (h *Hierarchy) L1SetOf(addr uint64) int {
	return int((addr >> h.lineShift) & h.cores[0].l1.setMask)
}

// holders returns the mask of cores whose private caches hold line.
func (h *Hierarchy) holders(line uint64) uint64 {
	if !h.cfg.Snoop {
		return h.dir.get(line)
	}
	var mask uint64
	for i := range h.cores {
		if w := h.cores[i].l2.peek(line); w != nil {
			mask |= 1 << uint(i)
		}
	}
	return mask
}

// dropHolder removes core from line's holder set.
func (h *Hierarchy) dropHolder(line uint64, core int) {
	if h.cfg.Snoop {
		return
	}
	h.dir.andNot(line, 1<<uint(core))
}

// evictPrivate handles a victim displaced from a core's private L2: the L1
// copy must go too (inclusion), the directory forgets the core, and modified
// data spills into the shared victim L3.
func (h *Hierarchy) evictPrivate(core int, v way) {
	if v.state() == invalid {
		return
	}
	if h.mru[core].line == v.line() {
		// The evicted line leaves this core's private hierarchy entirely;
		// its MRU filter entry (if it names this line) is no longer a hit.
		h.mru[core].valid = false
	}
	h.cores[core].l1.invalidate(v.line())
	var rest uint64
	if h.cfg.Snoop {
		rest = h.holders(v.line()) &^ (1 << uint(core))
	} else {
		// One directory probe both forgets the core and reports who is
		// left, replacing the drop-then-recheck pair of probes.
		rest = h.dir.andNot(v.line(), 1<<uint(core))
	}
	l3 := &h.l3s[h.socket[core]] // victims spill into the evicting chip's L3
	if v.state() == modified || v.state() == exclusive {
		// AMD-style victim L3: private evictions (clean-exclusive or
		// dirty) are installed in L3 so a later miss can hit there.
		h.stats[core].WritebacksL3++
		h.spillL3(h.socket[core], l3, v.line(), modified)
	} else if rest == 0 {
		// Last shared copy leaves the private caches; keep the data
		// reachable in L3 rather than silently dropping it.
		h.spillL3(h.socket[core], l3, v.line(), shared)
	}
}

// spillL3 installs a victim line into socket's L3 bank and keeps the global
// presence index in step: the new line gains the socket's bit, and a line
// the insert displaced (dropped to memory) loses it.
func (h *Hierarchy) spillL3(socket int, l3 *bank, line uint64, st mesi) {
	if v := l3.insert(line, st); v.state() != invalid && v.line() != line {
		h.l3pres.andNot(v.line(), 1<<uint(socket))
	}
	h.l3pres.or(line, 1<<uint(socket))
}

// fill installs line into core's L1+L2 with state st, handling evictions.
func (h *Hierarchy) fill(core int, line uint64, st mesi) {
	p := &h.cores[core]
	if v := p.l2.insert(line, st); v.state() != invalid && v.line() != line {
		h.evictPrivate(core, v)
	}
	if v := p.l1.insert(line, st); v.state() != invalid && v.line() != line {
		// L1 victim remains in L2 (inclusive); nothing else to do. If it
		// was modified, L2 already tracks the line; keep its state.
		_ = v
	}
	h.perSetFills[line&p.l1.setMask]++
	// The directory already reflects this fill: slowAccess's fused miss
	// probe (dir.swap / dir.fetchOr) wrote the core into the holder set
	// before any fill path runs.
}

// invalidateOthers removes line from every private cache in mask (the
// holder set excluding the accessing core), returning how many copies were
// killed. It touches only the banks: both callers write the line's final
// holder set — the accessing core alone — with a single dir.swap probe, so
// no per-holder directory update happens here.
func (h *Hierarchy) invalidateOthers(line uint64, mask uint64) int {
	killed := 0
	for m := mask; m != 0; {
		i := bits.TrailingZeros64(m)
		m &^= 1 << uint(i)
		if h.mru[i].line == line {
			// Foreign write: the holder's fast-path filter must drop the
			// line before its copy is killed.
			h.mru[i].valid = false
		}
		p := &h.cores[i]
		p.l1.invalidate(line)
		if st := p.l2.invalidate(line); st != invalid {
			killed++
			h.stats[i].InvalsRecv++
		}
	}
	return killed
}

// downgradeOthers moves the copies of line held by mask (the holder set
// excluding the accessing core, precomputed by the caller) to shared state
// (a remote read of a modified/exclusive line).
func (h *Hierarchy) downgradeOthers(line uint64, mask uint64) {
	for i := 0; mask != 0; i++ {
		if mask&(1<<uint(i)) == 0 {
			continue
		}
		mask &^= 1 << uint(i)
		if h.mru[i].line == line {
			// Foreign read: the holder drops to Shared, which the fast path
			// must not claim as a private M/E hit.
			h.mru[i].valid = false
		}
		p := &h.cores[i]
		p.l1.setState(line, shared)
		p.l2.setState(line, shared)
	}
}

// SetReference switches the hierarchy between the MRU-filtered fast path and
// the retained reference path. Both produce identical results and identical
// internal state evolution; reference mode exists for the equivalence suite.
func (h *Hierarchy) SetReference(on bool) {
	h.reference = on
	if on {
		for i := range h.mru {
			h.mru[i] = mruLine{}
		}
	}
}

// Access performs one access by core to the line containing addr and returns
// where it was satisfied. size is unused beyond the containing line; callers
// split multi-line accesses (see sim.Ctx).
func (h *Hierarchy) Access(core int, addr uint64, write bool) Result {
	line := addr >> h.lineShift
	if !h.reference {
		if r, ok := h.fastHit(core, line, write); ok {
			return r
		}
	}
	return h.slowAccess(core, addr, line, write)
}

// fastHit is the hot-line fast path: one probe of slot 0 of the line's L1
// set — slot 0 is where every slow-path hit leaves a line, via
// move-to-front — decides whether the bank scans, directory probe, and
// coherence branches of the slow path can matter. On a probe hit it replays
// exactly the mutations the slow path would make: the per-bank LRU tick
// bumps, the M-state transitions, the counters, and the MRU filter arming.
// Reads are served from any valid state — an L1 read hit is state-blind,
// and a line invalidated under a foreign write fails the state check.
// Writes additionally need Modified/Exclusive at slot 0 of both levels (a
// Shared write must pay the slow path's upgrade, and a write whose line
// sits deeper in a set must pay the scans that move it up). The probe is
// self-validating — correctness never depends on the MRU filter, which the
// foreign-access paths nonetheless invalidate precisely so that it is a
// checkable invariant (see MRUArmed and the fastpath tests). Any check
// failing falls back to the slow path with no state touched.
func (h *Hierarchy) fastHit(core int, line uint64, write bool) (Result, bool) {
	p := &h.cores[core]
	base := line << 2
	w1 := &p.l1.ways[(line&p.l1.setMask)*p.l1.nways]
	if !w1.matches(base) {
		return Result{}, false
	}
	st := &h.stats[core]
	if !write {
		st.Accesses++
		p.l1.tick++
		w1.lru = p.l1.tick
		h.mru[core] = mruLine{line: line, valid: true}
		st.L1Hits++
		st.LatencySum += uint64(h.lat[L1Hit])
		return Result{Level: L1Hit, Latency: h.lat[L1Hit]}, true
	}
	// A write needs Modified or Exclusive (tag low bits 2 or 3) at slot 0
	// of both levels; xor against base leaves exactly those two values.
	if (w1.tag^base)-2 > 1 {
		return Result{}, false
	}
	w2 := &p.l2.ways[(line&p.l2.setMask)*p.l2.nways]
	if (w2.tag^base)-2 > 1 {
		return Result{}, false
	}
	st.Accesses++
	st.Writes++
	p.l1.tick++
	w1.lru = p.l1.tick
	p.l2.tick++
	w2.lru = p.l2.tick
	w1.tag |= 3 // Exclusive or Modified -> Modified
	w2.tag |= 3
	h.mru[core] = mruLine{line: line, valid: true}
	st.L1Hits++
	st.LatencySum += uint64(h.lat[L1Hit])
	return Result{Level: L1Hit, Latency: h.lat[L1Hit]}, true
}

// noteMRU records that core just completed a private hit on line in state st,
// arming the fast-path filter for any valid state (fastHit itself gates
// writes on Modified/Exclusive). Callers guarantee the line is at slot 0 of
// the core's L1 set (move-to-front).
func (h *Hierarchy) noteMRU(core int, line uint64, st mesi) {
	if !h.reference && st != invalid {
		h.mru[core] = mruLine{line: line, valid: true}
	}
}

// slowAccess is the full access path (and, verbatim, the reference path).
func (h *Hierarchy) slowAccess(core int, addr uint64, line uint64, write bool) Result {
	p := &h.cores[core]
	st := &h.stats[core]
	st.Accesses++
	if write {
		st.Writes++
	}

	// One directory probe up front settles everything the private lookups
	// and the old per-path probes used to establish separately. The access
	// always ends with core holding the line, so the directory's final
	// state is known before any bank is touched: a write leaves core the
	// sole holder (swap — correct for hits, upgrades, and misses alike), a
	// read adds core to the holder set (fetchOr, a no-op when core already
	// holds it). The returned old mask answers two questions at once:
	// whether core's own L1/L2 can hold the line (self bit — if clear, both
	// private scans are skipped; the directory tracks L2, the inclusion
	// root), and who the foreign sharers are (threaded to the upgrade and
	// miss paths, which no longer re-probe). Snoop mode has no directory
	// and keeps the scan-everything shape.
	selfBit := uint64(1) << uint(core)
	var others uint64
	private := true
	if !h.cfg.Snoop {
		var old uint64
		if write {
			old = h.dir.swap(line, selfBit)
		} else {
			old = h.dir.fetchOr(line, selfBit)
		}
		others = old &^ selfBit
		private = old&selfBit != 0
	}
	if private {
		if w1 := p.l1.lookup(line); w1 != nil {
			if !write {
				// A read hit in L1 is the overwhelmingly common case and, as
				// on real hardware, is invisible to L2 (no LRU touch — the
				// L1 filters it). Inclusion keeps states in sync on the
				// write paths, which still consult L2.
				h.noteMRU(core, line, w1.state())
				st.L1Hits++
				st.LatencySum += uint64(h.cfg.LatL1)
				return Result{Level: L1Hit, Latency: h.cfg.LatL1}
			}
			w2 := p.l2.lookup(line) // inclusive: always present
			if w2 == nil {
				w2 = w1 // defensive: treat L1 as authority
			}
			return h.hitUpgrade(core, line, w1, w2, L1Hit, h.cfg.LatL1, write, others)
		}
		if w2 := p.l2.lookup(line); w2 != nil {
			// Promote into L1.
			stCopy := w2.state()
			if v := p.l1.insert(line, stCopy); v.state() != invalid && v.line() != line {
				_ = v // victim stays in L2 (inclusive)
			}
			h.perSetFills[line&p.l1.setMask]++
			w1 := p.l1.lookup(line)
			return h.hitUpgrade(core, line, w1, w2, L2Hit, h.cfg.LatL2, write, others)
		}
	}

	// Miss in the private hierarchy: consult the other cores. A copy on
	// the same chip supplies the line at the on-chip cost; otherwise the
	// transfer crosses the chip interconnect.
	socket := h.socket[core]
	if h.cfg.Snoop {
		others = h.holders(line) &^ selfBit
	}
	if others != 0 {
		lv, lat := ForeignHit, h.cfg.LatForeign
		if others&h.sockMask[socket] == 0 {
			lv, lat = ForeignRemote, h.cfg.LatForeignRemote
		}
		if write {
			killed := h.invalidateOthers(line, others)
			st.InvalsSent += uint64(killed)
			h.invalidateL3(line)
			h.fill(core, line, modified)
		} else {
			h.downgradeOthers(line, others)
			h.fill(core, line, shared)
		}
		return h.finish(core, st, lv, lat)
	}

	// The victim L3s, located with one probe of the global presence index
	// instead of a per-socket probe cascade (on the DRAM-bound misses that
	// dominate this path, every skipped probe is a skipped cache miss).
	// The banks remain authoritative: a set presence bit still goes through
	// the bank's own lookup, which performs the LRU touch a hit implies.
	if l3mask := h.l3pres.get(line); l3mask != 0 {
		// The chip's own victim L3.
		if l3mask&(1<<uint(socket)) != 0 {
			if w := h.l3s[socket].lookup(line); w != nil {
				h.l3s[socket].invalidate(line) // victim cache: line moves to the private side
				h.l3pres.andNot(line, 1<<uint(socket))
				if write {
					h.fill(core, line, modified)
				} else {
					h.fill(core, line, exclusive)
				}
				return h.finish(core, st, L3Hit, h.cfg.LatL3)
			}
		}
		// Another chip's victim L3: still a cache-to-cache supply, but the
		// line crosses the interconnect like any other cross-chip transfer.
		for m := l3mask &^ (1 << uint(socket)); m != 0; {
			s := bits.TrailingZeros64(m)
			m &^= 1 << uint(s)
			if w := h.l3s[s].lookup(line); w != nil {
				h.l3s[s].invalidate(line)
				h.l3pres.andNot(line, 1<<uint(s))
				if write {
					h.fill(core, line, modified)
				} else {
					h.fill(core, line, exclusive)
				}
				return h.finish(core, st, ForeignRemote, h.cfg.LatForeignRemote)
			}
		}
	}

	// Memory: local node unless the page is homed on another socket.
	if write {
		h.fill(core, line, modified)
	} else {
		h.fill(core, line, exclusive)
	}
	if h.isRemoteHome(addr, socket) {
		return h.finish(core, st, DRAMRemote, h.cfg.LatDRAMRemote)
	}
	return h.finish(core, st, DRAM, h.cfg.LatDRAM)
}

// invalidateL3 removes line from every socket's victim bank. The presence
// index names the holding sockets (usually none), so the common case is one
// probe and no bank touches at all.
func (h *Hierarchy) invalidateL3(line uint64) {
	m := h.l3pres.get(line)
	if m == 0 {
		return
	}
	for mm := m; mm != 0; mm &= mm - 1 {
		h.l3s[bits.TrailingZeros64(mm)].invalidate(line)
	}
	h.l3pres.set(line, 0)
}

// finish records the satisfied level in the core's counters. The level
// switch is flattened to one load through the precomputed per-core counter
// table (see hitCtr).
func (h *Hierarchy) finish(core int, st *Stats, lv Level, lat uint32) Result {
	st.LatencySum += uint64(lat)
	*h.hitCtr[core][lv]++
	return Result{Level: lv, Latency: lat}
}

// hitUpgrade completes a private-cache hit. A write to a Shared line must
// still invalidate the other copies ("upgrade"), which costs a coherence
// round trip.
// hitUpgrade completes a private-cache hit. others is the holder set
// excluding core that slowAccess's up-front directory probe returned;
// under Snoop there is no directory and the (rare) shared-upgrade branch
// scans for sharers itself.
func (h *Hierarchy) hitUpgrade(core int, line uint64, w1, w2 *way, lv Level, lat uint32, write bool, others uint64) Result {
	st := &h.stats[core]
	if !write {
		if w1 != nil {
			h.noteMRU(core, line, w2.state())
		}
		return h.finish(core, st, lv, lat)
	}
	switch w2.state() {
	case modified, exclusive:
		w2.setState(modified)
		if w1 != nil {
			w1.setState(modified)
			h.noteMRU(core, line, modified)
		}
		return h.finish(core, st, lv, lat)
	default: // shared: upgrade
		// The invalidation round trip prices like the farthest copy: any
		// sharer on another chip pushes the upgrade to the cross-chip cost.
		// The directory already holds the post-upgrade state (core as sole
		// holder) from slowAccess's swap; only the losers' banks remain.
		if h.cfg.Snoop {
			others = h.holders(line) &^ (1 << uint(core))
		}
		killed := h.invalidateOthers(line, others)
		w2.setState(modified)
		if w1 != nil {
			w1.setState(modified)
			h.noteMRU(core, line, modified)
		}
		st.Upgrades++
		st.InvalsSent += uint64(killed)
		l := lat
		if killed > 0 {
			l = h.cfg.LatForeign
			if others&^h.sockMask[h.socket[core]] != 0 {
				l = h.cfg.LatForeignRemote
			}
		}
		return h.finish(core, st, lv, l)
	}
}

// Probe reports where an access by core to addr *would* hit, without changing
// any state. Intended for tests and assertions.
func (h *Hierarchy) Probe(core int, addr uint64) Level {
	line := addr >> h.lineShift
	p := &h.cores[core]
	socket := h.socket[core]
	if w := p.l1.peek(line); w != nil {
		return L1Hit
	}
	if w := p.l2.peek(line); w != nil {
		return L2Hit
	}
	if others := h.holders(line) &^ (1 << uint(core)); others != 0 {
		if others&h.sockMask[socket] != 0 {
			return ForeignHit
		}
		return ForeignRemote
	}
	if w := h.l3s[socket].peek(line); w != nil {
		return L3Hit
	}
	for s := range h.l3s {
		if s != socket && h.l3s[s].peek(line) != nil {
			return ForeignRemote
		}
	}
	if h.isRemoteHome(addr, socket) {
		return DRAMRemote
	}
	return DRAM
}

// peek is lookup without LRU side effects.
func (b *bank) peek(line uint64) *way {
	set := b.set(line)
	base := line << 2
	for i := range set {
		if set[i].matches(base) {
			return &set[i]
		}
	}
	return nil
}

// LineContent describes one resident cache line in a contents snapshot.
type LineContent struct {
	Core   int    // -1 for a socket's L3 bank
	Socket int    // socket holding the line (the core's chip, or the bank's)
	Addr   uint64 // line base address
}

// Contents snapshots every valid line in the hierarchy: the cache-contents
// inspection hardware the paper's §7 wishes existed. DProf's oracle
// working-set view (core.OracleWorkingSet) is built on it.
func (h *Hierarchy) Contents() []LineContent {
	var out []LineContent
	shift := h.lineShift
	for ci := range h.cores {
		for _, w := range h.cores[ci].l2.ways {
			if w.state() != invalid {
				out = append(out, LineContent{Core: ci, Socket: h.socket[ci], Addr: w.line() << shift})
			}
		}
	}
	for s := range h.l3s {
		l3 := &h.l3s[s]
		for _, w := range l3.ways {
			if w.state() != invalid {
				out = append(out, LineContent{Core: -1, Socket: s, Addr: w.line() << shift})
			}
		}
	}
	return out
}

// SocketUsage summarizes one socket's cache occupancy: valid lines in its
// cores' private caches (counted at L2, the inclusion root) and in its L3
// victim bank. The working-set view reports it per socket.
type SocketUsage struct {
	Socket       int
	PrivateLines int
	L3Lines      int
}

// Lines returns the socket's total valid line count.
func (u SocketUsage) Lines() int { return u.PrivateLines + u.L3Lines }

// SocketOccupancy counts the valid lines resident on each socket.
func (h *Hierarchy) SocketOccupancy() []SocketUsage {
	out := make([]SocketUsage, h.topo.Sockets)
	for s := range out {
		out[s].Socket = s
	}
	for ci := range h.cores {
		u := &out[h.socket[ci]]
		for _, w := range h.cores[ci].l2.ways {
			if w.state() != invalid {
				u.PrivateLines++
			}
		}
	}
	for s := range h.l3s {
		l3 := &h.l3s[s]
		for _, w := range l3.ways {
			if w.state() != invalid {
				out[s].L3Lines++
			}
		}
	}
	return out
}

// CoreStats returns a copy of core's counters.
func (h *Hierarchy) CoreStats(core int) Stats { return h.stats[core] }

// Totals returns counters summed over all cores.
func (h *Hierarchy) Totals() Stats {
	var t Stats
	for i := range h.stats {
		t.Add(&h.stats[i])
	}
	return t
}

// ResetStats zeroes all counters (cache contents are preserved), so a
// measurement window can exclude warm-up.
func (h *Hierarchy) ResetStats() {
	for i := range h.stats {
		h.stats[i] = Stats{}
	}
	for i := range h.perSetFills {
		h.perSetFills[i] = 0
	}
}

// PerSetFills returns the cumulative L1 fill count per set index (all cores).
func (h *Hierarchy) PerSetFills() []uint64 {
	out := make([]uint64, len(h.perSetFills))
	copy(out, h.perSetFills)
	return out
}

// Latency returns the configured latency for a level (a precomputed table
// lookup; out-of-range levels price as local DRAM, as before).
func (h *Hierarchy) Latency(lv Level) uint32 {
	if int(lv) < NumLevels {
		return h.lat[lv]
	}
	return h.cfg.LatDRAM
}

// checkInvariants validates MESI single-writer and inclusion properties.
// It is exported through an internal test hook only.
func (h *Hierarchy) checkInvariants() error {
	if h.cfg.Snoop {
		return nil
	}
	// Collect every valid private line per core from L2 (inclusion root).
	type holder struct {
		core int
		st   mesi
	}
	lines := make(map[uint64][]holder)
	for c := range h.cores {
		for _, w := range h.cores[c].l2.ways {
			if w.state() != invalid {
				lines[w.line()] = append(lines[w.line()], holder{c, w.state()})
			}
		}
		// Inclusion: every L1 line must be in L2.
		for _, w := range h.cores[c].l1.ways {
			if w.state() == invalid {
				continue
			}
			if h.cores[c].l2.peek(w.line()) == nil {
				return fmt.Errorf("inclusion violated: core %d L1 holds line %#x not in L2", c, w.line())
			}
		}
	}
	for line, hs := range lines {
		var mask uint64
		mod := 0
		for _, x := range hs {
			mask |= 1 << uint(x.core)
			if x.st == modified || x.st == exclusive {
				mod++
			}
		}
		if mod > 0 && len(hs) > 1 {
			return fmt.Errorf("MESI violated: line %#x exclusive/modified with %d holders", line, len(hs))
		}
		if dm := h.dir.get(line); dm != mask {
			return fmt.Errorf("directory stale for line %#x: dir=%#x actual=%#x", line, dm, mask)
		}
	}
	// Directory must not claim holders that do not exist.
	var dirErr error
	h.dir.forEach(func(line, dm uint64) {
		if dirErr != nil {
			return
		}
		var mask uint64
		if hs, ok := lines[line]; ok {
			for _, x := range hs {
				mask |= 1 << uint(x.core)
			}
		}
		if dm != mask {
			dirErr = fmt.Errorf("directory entry for line %#x claims %#x, caches hold %#x", line, dm, mask)
		}
	})
	return dirErr
}
