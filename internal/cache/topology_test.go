package cache

import "testing"

func TestTopologyValidateAndParse(t *testing.T) {
	cases := []struct {
		in   string
		want Topology
		ok   bool
	}{
		{"4x4", Topology{4, 4}, true},
		{"1x16", Topology{1, 16}, true},
		{" 2x8 ", Topology{2, 8}, true},
		{"0x4", Topology{}, false},
		{"4x0", Topology{}, false},
		{"9x9", Topology{}, false}, // 81 cores > MaxCores
		{"4", Topology{}, false},
		{"axb", Topology{}, false},
	}
	for _, c := range cases {
		got, err := ParseTopology(c.in)
		if (err == nil) != c.ok {
			t.Errorf("ParseTopology(%q): err=%v, want ok=%v", c.in, err, c.ok)
			continue
		}
		if c.ok && got != c.want {
			t.Errorf("ParseTopology(%q) = %v, want %v", c.in, got, c.want)
		}
	}
	topo := Topology{4, 4}
	if topo.NumCores() != 16 {
		t.Errorf("NumCores = %d, want 16", topo.NumCores())
	}
	if s := topo.SocketOf(5); s != 1 {
		t.Errorf("SocketOf(5) = %d, want 1", s)
	}
	if cores := topo.CoresOn(2); cores[0] != 8 || cores[3] != 11 {
		t.Errorf("CoresOn(2) = %v, want [8 9 10 11]", cores)
	}
}

// TestCrossSocketCoherence is the ISSUE 3 satellite table test: a line
// modified on socket 0 and read from socket 1 pays the cross-chip latency, a
// same-socket read pays the on-chip latency, and the single-socket topology
// reproduces the flat hierarchy's LatForeign exactly.
func TestCrossSocketCoherence(t *testing.T) {
	cfg := DefaultConfig()
	cases := []struct {
		name       string
		topo       Topology
		writer     int
		reader     int
		wantLevel  Level
		wantCycles uint32
	}{
		{"4x4 same socket", Topology{4, 4}, 0, 1, ForeignHit, cfg.LatForeign},
		{"4x4 cross socket", Topology{4, 4}, 0, 4, ForeignRemote, cfg.LatForeignRemote},
		{"4x4 far socket", Topology{4, 4}, 0, 15, ForeignRemote, cfg.LatForeignRemote},
		{"2x8 same socket", Topology{2, 8}, 2, 7, ForeignHit, cfg.LatForeign},
		{"2x8 cross socket", Topology{2, 8}, 2, 8, ForeignRemote, cfg.LatForeignRemote},
		{"1x16 reproduces LatForeign", Topology{1, 16}, 0, 15, ForeignHit, cfg.LatForeign},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			h := NewTopo(cfg, c.topo)
			const addr = 0x1000
			h.Access(c.writer, addr, true) // line Modified in writer's cache
			res := h.Access(c.reader, addr, false)
			if res.Level != c.wantLevel || res.Latency != c.wantCycles {
				t.Fatalf("read after remote write: level %v latency %d, want %v latency %d",
					res.Level, res.Latency, c.wantLevel, c.wantCycles)
			}
			if err := h.checkInvariants(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestCrossSocketUpgrade checks that a write upgrade of a line shared with
// another chip pays the cross-chip invalidation round trip.
func TestCrossSocketUpgrade(t *testing.T) {
	cfg := DefaultConfig()
	h := NewTopo(cfg, Topology{4, 4})
	const addr = 0x2000
	h.Access(0, addr, false) // exclusive on core 0
	h.Access(4, addr, false) // shared with socket 1
	res := h.Access(0, addr, true)
	if res.Latency != cfg.LatForeignRemote {
		t.Fatalf("cross-chip upgrade latency %d, want %d", res.Latency, cfg.LatForeignRemote)
	}
	st := h.CoreStats(0)
	if st.Upgrades != 1 || st.InvalsSent != 1 {
		t.Fatalf("upgrades=%d invalsSent=%d, want 1/1", st.Upgrades, st.InvalsSent)
	}
}

// TestRemoteDRAM checks home-node accounting: an access that misses every
// cache goes to the page's home node, paying the remote latency from other
// sockets and the local latency from the home socket.
func TestRemoteDRAM(t *testing.T) {
	cfg := DefaultConfig()
	h := NewTopo(cfg, Topology{4, 4})
	const page = uint64(0x40000000)
	h.SetPageHome(page, 0)
	if home := h.HomeOf(page + 100); home != 0 {
		t.Fatalf("HomeOf = %d, want 0", home)
	}

	// Core 4 (socket 1) misses everywhere: remote fill.
	res := h.Access(4, page, false)
	if res.Level != DRAMRemote || res.Latency != cfg.LatDRAMRemote {
		t.Fatalf("remote-node fill: %v/%d, want %v/%d", res.Level, res.Latency, DRAMRemote, cfg.LatDRAMRemote)
	}
	// A different line on the same page from the home socket: local fill.
	res = h.Access(0, page+64, false)
	if res.Level != DRAM || res.Latency != cfg.LatDRAM {
		t.Fatalf("home-node fill: %v/%d, want %v/%d", res.Level, res.Latency, DRAM, cfg.LatDRAM)
	}
	// Unmapped pages are local from anywhere.
	res = h.Access(8, page+HomeGranule, false)
	if res.Level != DRAM {
		t.Fatalf("unmapped page: %v, want %v", res.Level, DRAM)
	}
	tot := h.Totals()
	if tot.DRAMRemoteFills != 1 || tot.DRAMFills != 2 {
		t.Fatalf("fills local=%d remote=%d, want 2/1", tot.DRAMFills, tot.DRAMRemoteFills)
	}
}

// TestRemoteL3Supply checks that a victim line parked in another chip's L3
// is supplied across the interconnect (and migrates to the requester).
func TestRemoteL3Supply(t *testing.T) {
	cfg := DefaultConfig()
	h := NewTopo(cfg, Topology{2, 8})
	const addr = 0x3000
	h.Access(0, addr, true)
	// Evict core 0's copy into socket 0's L3 by filling its L2 set.
	l2Sets := cfg.L2Size / cfg.LineSize / uint64(cfg.L2Ways)
	for i := uint64(1); i <= uint64(cfg.L2Ways); i++ {
		h.Access(0, addr+i*l2Sets*cfg.LineSize, false)
	}
	if lv := h.Probe(0, addr); lv != L3Hit {
		t.Fatalf("line not parked in home L3 (probe=%v); eviction setup broken", lv)
	}
	if lv := h.Probe(8, addr); lv != ForeignRemote {
		t.Fatalf("probe from other socket = %v, want %v", lv, ForeignRemote)
	}
	res := h.Access(8, addr, false)
	if res.Level != ForeignRemote || res.Latency != cfg.LatForeignRemote {
		t.Fatalf("remote L3 supply: %v/%d, want %v/%d", res.Level, res.Latency, ForeignRemote, cfg.LatForeignRemote)
	}
	if lv := h.Probe(8, addr); lv != L1Hit {
		t.Fatalf("line did not migrate to requester (probe=%v)", lv)
	}
}

// TestSocketOccupancy checks the per-socket line accounting the working-set
// view reports.
func TestSocketOccupancy(t *testing.T) {
	cfg := DefaultConfig()
	h := NewTopo(cfg, Topology{4, 4})
	h.Access(0, 0x1000, false)  // socket 0
	h.Access(0, 0x2000, false)  // socket 0
	h.Access(12, 0x3000, false) // socket 3
	occ := h.SocketOccupancy()
	if len(occ) != 4 {
		t.Fatalf("got %d sockets, want 4", len(occ))
	}
	if occ[0].PrivateLines != 2 || occ[3].PrivateLines != 1 || occ[1].Lines() != 0 {
		t.Fatalf("occupancy = %+v", occ)
	}
}

// TestPerSocketL3Split checks each chip gets L3Size/Sockets bytes of victim
// cache: the same total as the flat machine, banked per chip.
func TestPerSocketL3Split(t *testing.T) {
	cfg := DefaultConfig()
	h := NewTopo(cfg, Topology{4, 4})
	perSocketLines := int(cfg.L3Size / uint64(4) / cfg.LineSize)
	for s, b := range h.l3s {
		if got := len(b.ways); got != perSocketLines {
			t.Fatalf("socket %d L3 holds %d lines, want %d", s, got, perSocketLines)
		}
	}
	flat := New(cfg, 16)
	if got := len(flat.l3s[0].ways); got != perSocketLines*4 {
		t.Fatalf("flat L3 holds %d lines, want %d", got, perSocketLines*4)
	}
}
