package cache

import (
	"fmt"
	"strconv"
	"strings"
)

// Topology describes the socket layout of the simulated machine: how many
// chips it has and how many cores sit on each chip. The paper's machine is a
// four-socket AMD box (4 chips x 4 cores, one L3 per chip, HyperTransport
// links between chips); the simulator's default remains the flat
// single-socket 16-core machine, which reproduces the pre-topology results
// exactly.
//
// Cores are numbered socket-major: cores [0, CoresPerSocket) are socket 0,
// the next CoresPerSocket cores are socket 1, and so on.
type Topology struct {
	Sockets        int
	CoresPerSocket int
}

// SingleSocket returns the flat topology: one chip holding all cores.
func SingleSocket(cores int) Topology {
	return Topology{Sockets: 1, CoresPerSocket: cores}
}

// PaperTopology returns the paper's four-socket AMD layout (4 chips x 4
// cores).
func PaperTopology() Topology {
	return Topology{Sockets: 4, CoresPerSocket: 4}
}

// NumCores returns the machine's total core count.
func (t Topology) NumCores() int { return t.Sockets * t.CoresPerSocket }

// SocketOf returns the socket (chip) a core sits on.
func (t Topology) SocketOf(core int) int { return core / t.CoresPerSocket }

// CoresOn returns the core IDs belonging to a socket, lowest first.
func (t Topology) CoresOn(socket int) []int {
	out := make([]int, t.CoresPerSocket)
	for i := range out {
		out[i] = socket*t.CoresPerSocket + i
	}
	return out
}

// Validate reports whether the topology is usable.
func (t Topology) Validate() error {
	if t.Sockets <= 0 || t.CoresPerSocket <= 0 {
		return fmt.Errorf("cache: topology %dx%d must have positive sockets and cores per socket",
			t.Sockets, t.CoresPerSocket)
	}
	if n := t.NumCores(); n > MaxCores {
		return fmt.Errorf("cache: topology %dx%d has %d cores, above the limit of %d",
			t.Sockets, t.CoresPerSocket, n, MaxCores)
	}
	return nil
}

// String renders the topology as "SOCKETSxCORES", e.g. "4x4".
func (t Topology) String() string {
	return fmt.Sprintf("%dx%d", t.Sockets, t.CoresPerSocket)
}

// ParseTopology parses a "SOCKETSxCORES" string such as "4x4" or "1x16".
func ParseTopology(s string) (Topology, error) {
	parts := strings.SplitN(strings.TrimSpace(s), "x", 2)
	if len(parts) != 2 {
		return Topology{}, fmt.Errorf("cache: topology %q is not of the form SOCKETSxCORES (e.g. 4x4)", s)
	}
	sockets, err1 := strconv.Atoi(parts[0])
	cps, err2 := strconv.Atoi(parts[1])
	if err1 != nil || err2 != nil {
		return Topology{}, fmt.Errorf("cache: topology %q is not of the form SOCKETSxCORES (e.g. 4x4)", s)
	}
	t := Topology{Sockets: sockets, CoresPerSocket: cps}
	if err := t.Validate(); err != nil {
		return Topology{}, err
	}
	return t, nil
}
