package cache

import (
	"math/rand"
	"testing"
)

// TestDirTableMatchesMap cross-checks the open-addressed directory against a
// plain map under a random workload heavy in deletions (the case that
// exercises backward-shift deletion).
func TestDirTableMatchesMap(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	d := newDirTable(4) // tiny, to force many grows
	ref := map[uint64]uint64{}
	const lines = 512 // small key space => constant collisions and reuse
	for i := 0; i < 200_000; i++ {
		line := uint64(rng.Intn(lines))
		switch rng.Intn(4) {
		case 0: // or
			bits := uint64(1) << uint(rng.Intn(16))
			d.or(line, bits)
			ref[line] |= bits
		case 1: // set
			mask := uint64(rng.Intn(8))
			d.set(line, mask)
			if mask == 0 {
				delete(ref, line)
			} else {
				ref[line] = mask
			}
		case 2: // delete via set 0
			d.set(line, 0)
			delete(ref, line)
		case 3: // get
			if got, want := d.get(line), ref[line]; got != want {
				t.Fatalf("step %d: get(%d) = %#x, want %#x", i, line, got, want)
			}
		}
	}
	for line, want := range ref {
		if got := d.get(line); got != want {
			t.Fatalf("final: get(%d) = %#x, want %#x", line, got, want)
		}
	}
	count := 0
	d.forEach(func(line, mask uint64) {
		count++
		if ref[line] != mask {
			t.Fatalf("forEach: line %d has %#x, want %#x", line, mask, ref[line])
		}
	})
	if count != len(ref) {
		t.Fatalf("forEach visited %d entries, map has %d", count, len(ref))
	}
}

// TestLineSetMatchesMap does the same for the bank presence index.
func TestLineSetMatchesMap(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s := newLineSet()
	ref := map[uint64]bool{}
	const lines = 2048
	for i := 0; i < 200_000; i++ {
		line := uint64(rng.Intn(lines))
		switch rng.Intn(3) {
		case 0:
			s.add(line)
			ref[line] = true
		case 1:
			s.del(line)
			delete(ref, line)
		case 2:
			if got, want := s.has(line), ref[line]; got != want {
				t.Fatalf("step %d: has(%d) = %v, want %v", i, line, got, want)
			}
		}
	}
	for line := uint64(0); line < lines; line++ {
		if got, want := s.has(line), ref[line]; got != want {
			t.Fatalf("final: has(%d) = %v, want %v", line, got, want)
		}
	}
	if s.n != len(ref) {
		t.Fatalf("lineSet.n = %d, map has %d", s.n, len(ref))
	}
}

// TestLineZeroIsValid guards the key-is-line+1 encoding: line 0 must be
// storable and distinguishable from empty slots.
func TestLineZeroIsValid(t *testing.T) {
	d := newDirTable(4)
	d.or(0, 0b10)
	if got := d.get(0); got != 0b10 {
		t.Fatalf("get(0) = %#x, want 0b10", got)
	}
	d.set(0, 0)
	if got := d.get(0); got != 0 {
		t.Fatalf("after delete, get(0) = %#x", got)
	}
	s := newLineSet()
	s.add(0)
	if !s.has(0) {
		t.Fatal("lineSet lost line 0")
	}
	s.del(0)
	if s.has(0) {
		t.Fatal("lineSet kept deleted line 0")
	}
}
