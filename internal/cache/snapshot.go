package cache

// Checkpoint is a deep copy of every piece of mutable hierarchy state: the
// packed ways of every bank (private L1/L2 pairs and the per-socket victim
// L3s, LRU ticks included), the coherence directory, the L3 presence index,
// the page-home table, the per-core counters, the MRU fast-path filters, and
// the per-set fill histogram. It is immutable once taken: Restore copies out
// of it, so one checkpoint can seed any number of restores.
//
// Geometry (config, topology, latency tables, hit-counter pointers) is not
// captured — a checkpoint may only be restored into the hierarchy it was
// taken from, which Restore does in place so the pointers the hierarchy
// handed out (hitCtr, stats aliases) stay valid.
type Checkpoint struct {
	cores       []priv // banks hold copied way slices
	l3s         []bank
	dir         dirState
	l3pres      dirState
	homes       dirState
	stats       []Stats
	mru         []mruLine
	perSetFills []uint64
}

// dirState is a copied dirTable.
type dirState struct {
	entries []dirEntry
	mask    uint64
	n       int
	shift   uint
}

func checkpointDir(d *dirTable) dirState {
	return dirState{
		entries: append([]dirEntry(nil), d.entries...),
		mask:    d.mask,
		n:       d.n,
		shift:   d.shift,
	}
}

func (s *dirState) restore(d *dirTable) {
	d.entries = append([]dirEntry(nil), s.entries...)
	d.mask = s.mask
	d.n = s.n
	d.shift = s.shift
}

func checkpointBank(b *bank) bank {
	cp := *b
	cp.ways = append([]way(nil), b.ways...)
	return cp
}

func (b *bank) restoreFrom(cp *bank) {
	copy(b.ways, cp.ways)
	b.tick = cp.tick
}

// Checkpoint deep-copies the hierarchy's mutable state.
func (h *Hierarchy) Checkpoint() *Checkpoint {
	cp := &Checkpoint{
		cores:       make([]priv, len(h.cores)),
		l3s:         make([]bank, len(h.l3s)),
		dir:         checkpointDir(h.dir),
		l3pres:      checkpointDir(h.l3pres),
		homes:       checkpointDir(h.homes),
		stats:       append([]Stats(nil), h.stats...),
		mru:         append([]mruLine(nil), h.mru...),
		perSetFills: append([]uint64(nil), h.perSetFills...),
	}
	for i := range h.cores {
		cp.cores[i] = priv{
			l1: checkpointBank(&h.cores[i].l1),
			l2: checkpointBank(&h.cores[i].l2),
		}
	}
	for s := range h.l3s {
		cp.l3s[s] = checkpointBank(&h.l3s[s])
	}
	return cp
}

// Restore rewinds the hierarchy to the checkpointed state. It writes in
// place — the stats slice, bank way arrays, and counter pointers keep their
// identity — and copies out of the checkpoint, so the same checkpoint can be
// restored any number of times. The reference/fast-path mode is runtime
// state, not simulated state, and is left as-is (the MRU filter contents are
// restored, matching the mode the checkpoint was taken under; SetReference
// clears them when switching).
func (h *Hierarchy) Restore(cp *Checkpoint) {
	if len(cp.cores) != len(h.cores) || len(cp.l3s) != len(h.l3s) {
		panic("cache: checkpoint restored into a different hierarchy")
	}
	for i := range h.cores {
		h.cores[i].l1.restoreFrom(&cp.cores[i].l1)
		h.cores[i].l2.restoreFrom(&cp.cores[i].l2)
	}
	for s := range h.l3s {
		h.l3s[s].restoreFrom(&cp.l3s[s])
	}
	cp.dir.restore(h.dir)
	cp.l3pres.restore(h.l3pres)
	cp.homes.restore(h.homes)
	copy(h.stats, cp.stats)
	copy(h.mru, cp.mru)
	copy(h.perSetFills, cp.perSetFills)
}

// Bytes estimates the checkpoint's resident size, for checkpoint-pool
// budgeting. The bank way arrays dominate.
func (cp *Checkpoint) Bytes() uint64 {
	n := uint64(0)
	for i := range cp.cores {
		n += uint64(len(cp.cores[i].l1.ways)+len(cp.cores[i].l2.ways)) * 16
	}
	for s := range cp.l3s {
		n += uint64(len(cp.l3s[s].ways)) * 16
	}
	n += uint64(len(cp.dir.entries)+len(cp.l3pres.entries)+len(cp.homes.entries)) * 16
	n += uint64(len(cp.stats)) * uint64(14*8)
	n += uint64(len(cp.mru)) * 16
	n += uint64(len(cp.perSetFills)) * 8
	return n
}
