package cache

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func testConfig() Config {
	cfg := DefaultConfig()
	cfg.L1Size = 4 << 10 // 4KB, 2-way, 32 sets: small enough to force evictions
	cfg.L1Ways = 2
	cfg.L2Size = 16 << 10
	cfg.L2Ways = 4
	cfg.L3Size = 64 << 10
	cfg.L3Ways = 8
	return cfg
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := DefaultConfig()
	bad.LineSize = 48
	if bad.Validate() == nil {
		t.Error("non-power-of-two line size accepted")
	}
	bad = DefaultConfig()
	bad.L1Ways = 0
	if bad.Validate() == nil {
		t.Error("zero ways accepted")
	}
	bad = DefaultConfig()
	bad.L1Size = 96 << 10 // 1536 lines / 2 ways = 768 sets: not a power of two
	bad.L1Ways = 2
	if bad.Validate() == nil {
		t.Error("non-power-of-two set count accepted")
	}
}

func TestColdMissThenHit(t *testing.T) {
	h := New(testConfig(), 2)
	r := h.Access(0, 0x1000, false)
	if r.Level != DRAM {
		t.Fatalf("first access level = %v, want DRAM", r.Level)
	}
	r = h.Access(0, 0x1000, false)
	if r.Level != L1Hit {
		t.Fatalf("second access level = %v, want L1", r.Level)
	}
	if r.Latency != testConfig().LatL1 {
		t.Fatalf("L1 latency = %d, want %d", r.Latency, testConfig().LatL1)
	}
}

func TestSameLineDifferentOffsets(t *testing.T) {
	h := New(testConfig(), 1)
	h.Access(0, 0x1000, false)
	if r := h.Access(0, 0x103F, false); r.Level != L1Hit {
		t.Fatalf("same-line access missed: %v", r.Level)
	}
	if r := h.Access(0, 0x1040, false); r.Level == L1Hit {
		t.Fatal("next-line access should miss")
	}
}

func TestForeignTransferOnRead(t *testing.T) {
	h := New(testConfig(), 2)
	h.Access(0, 0x2000, true) // core 0 owns the line modified
	r := h.Access(1, 0x2000, false)
	if r.Level != ForeignHit {
		t.Fatalf("remote read level = %v, want foreign", r.Level)
	}
	// Both copies are now shared; both cores hit locally.
	if r := h.Access(0, 0x2000, false); r.Level != L1Hit {
		t.Fatalf("original owner lost its copy: %v", r.Level)
	}
	if r := h.Access(1, 0x2000, false); r.Level != L1Hit {
		t.Fatalf("reader lost its copy: %v", r.Level)
	}
}

func TestWriteInvalidatesSharers(t *testing.T) {
	h := New(testConfig(), 3)
	h.Access(0, 0x3000, false)
	h.Access(1, 0x3000, false)
	h.Access(2, 0x3000, false)
	// Core 0 upgrades: cores 1 and 2 must lose their copies.
	h.Access(0, 0x3000, true)
	if r := h.Access(1, 0x3000, false); r.Level != ForeignHit {
		t.Fatalf("invalidated sharer read level = %v, want foreign", r.Level)
	}
	st := h.CoreStats(2)
	if st.InvalsRecv == 0 {
		t.Error("core 2 should have recorded a received invalidation")
	}
	if err := h.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestUpgradeCountsAndLatency(t *testing.T) {
	cfg := testConfig()
	h := New(cfg, 2)
	h.Access(0, 0x4000, false)
	h.Access(1, 0x4000, false) // both shared
	r := h.Access(0, 0x4000, true)
	if r.Latency != cfg.LatForeign {
		t.Fatalf("upgrade with sharers latency = %d, want %d", r.Latency, cfg.LatForeign)
	}
	if h.CoreStats(0).Upgrades != 1 {
		t.Fatalf("upgrades = %d, want 1", h.CoreStats(0).Upgrades)
	}
	// Exclusive write hit must not pay the upgrade.
	r = h.Access(0, 0x4000, true)
	if r.Latency != cfg.LatL1 {
		t.Fatalf("write hit on modified line latency = %d, want %d", r.Latency, cfg.LatL1)
	}
}

func TestL2HitAfterL1Eviction(t *testing.T) {
	cfg := testConfig()
	h := New(cfg, 1)
	// L1: 2 ways, 32 sets. Three lines in the same L1 set evict the first.
	sets := uint64(h.L1Sets())
	stride := sets * cfg.LineSize
	h.Access(0, 0x10000, false)
	h.Access(0, 0x10000+stride, false)
	h.Access(0, 0x10000+2*stride, false)
	r := h.Access(0, 0x10000, false)
	if r.Level != L2Hit {
		t.Fatalf("level after L1 conflict eviction = %v, want L2", r.Level)
	}
}

func TestVictimL3(t *testing.T) {
	cfg := testConfig()
	h := New(cfg, 1)
	// Fill enough same-L2-set lines to push a victim into L3.
	l2sets := cfg.L2Size / cfg.LineSize / uint64(cfg.L2Ways)
	stride := l2sets * cfg.LineSize
	base := uint64(0x100000)
	n := cfg.L2Ways + 1
	for i := 0; i <= n; i++ {
		h.Access(0, base+uint64(i)*stride, false)
	}
	r := h.Access(0, base, false)
	if r.Level != L3Hit {
		t.Fatalf("evicted line level = %v, want L3 (victim cache)", r.Level)
	}
}

func TestInclusionAfterL2Eviction(t *testing.T) {
	cfg := testConfig()
	h := New(cfg, 2)
	l2sets := cfg.L2Size / cfg.LineSize / uint64(cfg.L2Ways)
	stride := l2sets * cfg.LineSize
	base := uint64(0x200000)
	for i := 0; i <= cfg.L2Ways+1; i++ {
		h.Access(0, base+uint64(i)*stride, false)
	}
	if err := h.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestProbeDoesNotMutate(t *testing.T) {
	h := New(testConfig(), 2)
	h.Access(0, 0x5000, true)
	before := h.CoreStats(0)
	if lv := h.Probe(1, 0x5000); lv != ForeignHit {
		t.Fatalf("probe from other core = %v, want foreign", lv)
	}
	if lv := h.Probe(0, 0x5000); lv != L1Hit {
		t.Fatalf("probe from owner = %v, want L1", lv)
	}
	if h.CoreStats(0) != before {
		t.Error("probe mutated statistics")
	}
	if r := h.Access(0, 0x5000, false); r.Level != L1Hit {
		t.Error("probe mutated cache state")
	}
}

func TestStatsAccounting(t *testing.T) {
	h := New(testConfig(), 2)
	h.Access(0, 0x6000, false) // DRAM
	h.Access(0, 0x6000, false) // L1
	h.Access(1, 0x6000, true)  // foreign (write steals)
	tot := h.Totals()
	if tot.Accesses != 3 {
		t.Fatalf("accesses = %d, want 3", tot.Accesses)
	}
	if tot.L1Hits != 1 || tot.DRAMFills != 1 || tot.ForeignHits != 1 {
		t.Fatalf("level counts wrong: %+v", tot)
	}
	if tot.Writes != 1 {
		t.Fatalf("writes = %d, want 1", tot.Writes)
	}
	if got := tot.L1Misses(); got != 2 {
		t.Fatalf("L1 misses = %d, want 2", got)
	}
	h.ResetStats()
	if h.Totals().Accesses != 0 {
		t.Error("ResetStats did not clear counters")
	}
}

func TestPerSetFills(t *testing.T) {
	h := New(testConfig(), 1)
	h.Access(0, 0, false)
	fills := h.PerSetFills()
	if fills[h.L1SetOf(0)] == 0 {
		t.Error("fill not recorded for the accessed set")
	}
}

func TestLatencyTable(t *testing.T) {
	cfg := testConfig()
	h := New(cfg, 1)
	for lv, want := range map[Level]uint32{
		L1Hit: cfg.LatL1, L2Hit: cfg.LatL2, L3Hit: cfg.LatL3,
		ForeignHit: cfg.LatForeign, DRAM: cfg.LatDRAM,
	} {
		if got := h.Latency(lv); got != want {
			t.Errorf("Latency(%v) = %d, want %d", lv, got, want)
		}
	}
}

func TestLevelStrings(t *testing.T) {
	names := map[Level]string{L1Hit: "L1", L2Hit: "L2", L3Hit: "L3", ForeignHit: "foreign", DRAM: "DRAM"}
	for lv, want := range names {
		if lv.String() != want {
			t.Errorf("Level(%d).String() = %q, want %q", lv, lv.String(), want)
		}
	}
}

// randomWorkload drives a hierarchy with a pseudo-random access pattern.
type randomWorkload struct {
	Seed int64
	N    uint16
}

func runRandom(h *Hierarchy, w randomWorkload, cores int) {
	rng := rand.New(rand.NewSource(w.Seed))
	for i := 0; i < int(w.N); i++ {
		core := rng.Intn(cores)
		addr := uint64(rng.Intn(1 << 16))
		h.Access(core, addr, rng.Intn(3) == 0)
	}
}

// TestQuickInvariants checks MESI + inclusion + directory invariants after
// arbitrary access sequences.
func TestQuickInvariants(t *testing.T) {
	prop := func(w randomWorkload) bool {
		h := New(testConfig(), 4)
		runRandom(h, w, 4)
		return h.CheckInvariants() == nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickSnoopEquivalence checks the directory and snoop coherence
// implementations classify every access identically.
func TestQuickSnoopEquivalence(t *testing.T) {
	prop := func(seed int64, n uint16) bool {
		cfgDir := testConfig()
		cfgSnoop := testConfig()
		cfgSnoop.Snoop = true
		hd := New(cfgDir, 4)
		hs := New(cfgSnoop, 4)
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < int(n)%2000; i++ {
			core := rng.Intn(4)
			addr := uint64(rng.Intn(1 << 15))
			write := rng.Intn(3) == 0
			rd := hd.Access(core, addr, write)
			rs := hs.Access(core, addr, write)
			if rd != rs {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickSingleWriter: after any write, no other core can hit locally
// without a coherence transaction first.
func TestQuickSingleWriter(t *testing.T) {
	prop := func(w randomWorkload, addr16 uint16) bool {
		h := New(testConfig(), 4)
		runRandom(h, w, 4)
		addr := uint64(addr16)
		h.Access(0, addr, true)
		// Any other core's probe must not claim a private hit.
		for c := 1; c < 4; c++ {
			if lv := h.Probe(c, addr); lv == L1Hit || lv == L2Hit {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestMaxCoresBound(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for too many cores")
		}
	}()
	New(testConfig(), MaxCores+1)
}
