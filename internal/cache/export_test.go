package cache

// CheckInvariants exposes the internal consistency checker to tests: MESI
// single-writer, L1⊆L2 inclusion, and directory accuracy.
func (h *Hierarchy) CheckInvariants() error { return h.checkInvariants() }

// MRUArmed reports whether core's fast-path MRU filter is armed on the line
// containing addr (tests of the invalidation paths).
func (h *Hierarchy) MRUArmed(core int, addr uint64) bool {
	f := h.mru[core]
	return f.valid && f.line == addr>>h.lineShift
}
