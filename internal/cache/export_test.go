package cache

// CheckInvariants exposes the internal consistency checker to tests: MESI
// single-writer, L1⊆L2 inclusion, and directory accuracy.
func (h *Hierarchy) CheckInvariants() error { return h.checkInvariants() }
