package ptu

import (
	"strings"
	"testing"

	"dprof/internal/lockstat"
	"dprof/internal/mem"
	"dprof/internal/sim"
)

func testWorld() (*sim.Machine, *mem.Allocator) {
	cfg := sim.DefaultConfig()
	cfg.Cores = 2
	m := sim.New(cfg)
	return m, mem.New(mem.DefaultConfig(), 2, lockstat.NewRegistry())
}

func TestNamesStaticsOnly(t *testing.T) {
	m, a := testWorld()
	_, devAddr := a.Static("fake_device", 128, "static device")
	dyn := a.RegisterType("dynobj", 128, "dynamic object")
	p := Attach(m, a)
	p.Start(1_000_000) // sample aggressively
	m.Schedule(0, 0, func(c *sim.Ctx) {
		addr := a.Alloc(c, dyn)
		for i := 0; i < 500; i++ {
			// Alternate cores via spawned reads to force misses on both.
			c.Read(devAddr, 8)
			c.Read(addr, 8)
			c.Write(devAddr, 8)
			c.Write(addr, 8)
		}
	})
	// Remote traffic creates foreign misses on both objects.
	m.Schedule(1, 1000, func(c *sim.Ctx) {
		for i := 0; i < 500; i++ {
			c.Read(devAddr, 8)
		}
	})
	m.RunAll()
	rep := p.BuildReport(0)
	if len(rep.Rows) == 0 {
		t.Fatal("no rows")
	}
	var staticNamed, dynamicNamed bool
	for _, r := range rep.Rows {
		if r.Name == "fake_device" {
			staticNamed = true
		}
		if r.Name == "dynobj" {
			dynamicNamed = true
		}
	}
	if !staticNamed {
		t.Error("static object not named")
	}
	if dynamicNamed {
		t.Error("PTU must NOT name dynamic allocations (that is DProf's advantage)")
	}
	if !strings.Contains(rep.String(), "no symbol") {
		t.Error("render missing the anonymous marker")
	}
}

func TestAggregatesByLineNotType(t *testing.T) {
	m, a := testWorld()
	dyn := a.RegisterType("multi", 64, "")
	p := Attach(m, a)
	p.Start(1_000_000)
	m.Schedule(0, 0, func(c *sim.Ctx) {
		// Two objects of the same type at different lines: PTU reports two
		// rows, never one aggregated row.
		x := a.Alloc(c, dyn)
		y := a.Alloc(c, dyn)
		for i := 0; i < 400; i++ {
			c.Write(x, 8)
			c.Write(y, 8)
		}
	})
	m.Schedule(1, 500, func(c *sim.Ctx) {
		// Remote reads make both lines miss.
		for i := 0; i < 400; i++ {
			c.Read(0x40000000, 8)
		}
	})
	m.RunAll()
	rep := p.BuildReport(0)
	lines := map[uint64]bool{}
	for _, r := range rep.Rows {
		lines[r.Line] = true
	}
	if len(lines) < 2 {
		t.Fatalf("expected per-line rows, got %d distinct lines", len(lines))
	}
}
