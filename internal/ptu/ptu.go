// Package ptu implements the third tool the paper positions DProf against:
// Intel's Performance Tuning Utility (§2.2).
//
// PTU also samples data addresses (via PEBS), but it attributes samples to
// **cache lines**, and resolves names only for *statically*-allocated data.
// Dynamically-allocated objects — everything the SLAB hands out, i.e. all
// the types in the paper's case studies — show up as anonymous addresses.
// There is also no aggregation by type: two skbuffs at different addresses
// are two unrelated rows. Running this baseline against the memcached
// workload makes the paper's §2.2 point concrete: the hot lines are visible,
// but nothing connects them.
package ptu

import (
	"fmt"
	"sort"
	"strings"

	"dprof/internal/hw"
	"dprof/internal/mem"
	"dprof/internal/sim"
)

// lineStats accumulates per-cache-line counters.
type lineStats struct {
	samples uint64
	misses  uint64
	latSum  uint64
}

// Profiler is the PTU-style data profiler.
type Profiler struct {
	m     *sim.Machine
	alloc *mem.Allocator
	pebs  *hw.PEBS

	lines    map[uint64]*lineStats
	lineSize uint64

	total  uint64
	misses uint64
}

// Attach wires PTU to the machine. Sampling starts with Start.
func Attach(m *sim.Machine, alloc *mem.Allocator) *Profiler {
	p := &Profiler{
		m:        m,
		alloc:    alloc,
		pebs:     hw.NewPEBS(m),
		lines:    make(map[uint64]*lineStats, 1<<10),
		lineSize: m.Hier.Config().LineSize,
	}
	return p
}

// Start begins PEBS sampling at the given rate (all accesses; threshold 0).
func (p *Profiler) Start(rate float64) {
	p.pebs.Start(rate, 0, func(c *sim.Ctx, s hw.Sample) {
		line := s.Ev.Addr &^ (p.lineSize - 1)
		ls := p.lines[line]
		if ls == nil {
			ls = &lineStats{}
			p.lines[line] = ls
		}
		ls.samples++
		p.total++
		if s.Ev.Level != 0 { // anything beyond L1
			ls.misses++
			p.misses++
			ls.latSum += uint64(s.Ev.Latency)
		}
	})
}

// Stop halts sampling.
func (p *Profiler) Stop() { p.pebs.Stop() }

// Row is one cache line in the report.
type Row struct {
	Line    uint64
	Name    string // static symbol name, or "" for dynamic memory
	MissPct float64
	Samples uint64
}

// Report is PTU's output: cache lines ranked by misses, named only when the
// line belongs to static data.
type Report struct {
	Rows        []Row
	NamedPct    float64 // fraction of miss samples attributed to a named symbol
	TotalMisses uint64
}

// BuildReport ranks the hottest lines. Only statically-allocated data gets a
// name — the limitation §2.2 describes ("Intel PTU does not associate
// addresses with dynamic memory; only with static memory").
func (p *Profiler) BuildReport(maxRows int) Report {
	statics := make(map[uint64]string) // static object base -> name
	for _, s := range p.alloc.Statics() {
		statics[s.Base] = s.Type.Name
	}
	nameFor := func(line uint64) string {
		t, base, ok := p.alloc.Resolve(line)
		if !ok {
			return ""
		}
		if _, isStatic := statics[base]; !isStatic {
			return "" // dynamic allocation: PTU cannot name it
		}
		return t.Name
	}
	rep := Report{TotalMisses: p.misses}
	var namedMisses uint64
	for line, ls := range p.lines {
		if ls.misses == 0 {
			continue
		}
		name := nameFor(line)
		if name != "" {
			namedMisses += ls.misses
		}
		row := Row{Line: line, Name: name, Samples: ls.samples}
		if p.misses > 0 {
			row.MissPct = 100 * float64(ls.misses) / float64(p.misses)
		}
		rep.Rows = append(rep.Rows, row)
	}
	sort.Slice(rep.Rows, func(i, j int) bool {
		if rep.Rows[i].MissPct != rep.Rows[j].MissPct {
			return rep.Rows[i].MissPct > rep.Rows[j].MissPct
		}
		return rep.Rows[i].Line < rep.Rows[j].Line
	})
	if maxRows > 0 && len(rep.Rows) > maxRows {
		rep.Rows = rep.Rows[:maxRows]
	}
	if p.misses > 0 {
		rep.NamedPct = 100 * float64(namedMisses) / float64(p.misses)
	}
	return rep
}

// String renders the report.
func (rep Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-18s %10s %10s  %s\n", "Cache line", "% misses", "samples", "Symbol")
	for _, r := range rep.Rows {
		name := r.Name
		if name == "" {
			name = "(dynamic memory: no symbol)"
		}
		fmt.Fprintf(&b, "%#018x %9.2f%% %10d  %s\n", r.Line, r.MissPct, r.Samples, name)
	}
	fmt.Fprintf(&b, "named miss samples: %.1f%% — everything else is anonymous addresses\n", rep.NamedPct)
	return b.String()
}
