// Package lockstat provides simulated kernel spinlocks and the lock-stat
// baseline profiler the paper compares DProf against (§6.1.2, §6.2.2).
//
// A Lock occupies 8 bytes of simulated memory, so acquiring and releasing it
// generates real coherence traffic on the enclosing structure's cache lines —
// which is how lock bouncing contributes to the data profile of types like
// net_device and udp_sock. Contention is modeled with release timestamps:
// a task acquiring a lock whose release time lies in its future busy-waits
// (spinning with periodic reads of the lock word) until that time.
//
// Every lock belongs to a Class; classes accumulate the statistics the
// lock-stat tool reports: wait time, hold time, acquisition counts, and the
// functions that acquired the lock.
package lockstat

import (
	"fmt"
	"sort"
	"strings"

	"dprof/internal/sim"
	"dprof/internal/sym"
)

// Class aggregates statistics for all locks of one kind (e.g. "Qdisc lock").
type Class struct {
	Name string

	Acquisitions uint64
	Contentions  uint64
	WaitCycles   uint64
	HoldCycles   uint64

	// sites is a move-to-front list rather than a map: a class is acquired
	// from a handful of call sites, and the bump on every Acquire sits on
	// the simulator's hot path where a short scan beats map hashing.
	sites []siteCount
}

type siteCount struct {
	pc sym.PC
	n  uint64
}

// bumpSite adds n acquisitions from pc, keeping the hottest site in front.
func (c *Class) bumpSite(pc sym.PC, n uint64) {
	s := c.sites
	for i := range s {
		if s[i].pc == pc {
			s[i].n += n
			if i > 0 {
				s[0], s[i] = s[i], s[0]
			}
			return
		}
	}
	c.sites = append(s, siteCount{pc, n})
}

func (c *Class) siteCountOf(pc sym.PC) uint64 {
	for _, sc := range c.sites {
		if sc.pc == pc {
			return sc.n
		}
	}
	return 0
}

// Sites returns the acquiring functions ordered by acquisition count.
func (c *Class) Sites() []sym.PC {
	out := make([]sym.PC, 0, len(c.sites))
	for _, sc := range c.sites {
		out = append(out, sc.pc)
	}
	sort.Slice(out, func(i, j int) bool {
		if ci, cj := c.siteCountOf(out[i]), c.siteCountOf(out[j]); ci != cj {
			return ci > cj
		}
		return sym.Name(out[i]) < sym.Name(out[j])
	})
	return out
}

// Registry holds all lock classes for one simulated machine.
type Registry struct {
	classes map[string]*Class
	order   []*Class
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{classes: make(map[string]*Class)}
}

// Class returns (creating if needed) the class with the given name.
func (r *Registry) Class(name string) *Class {
	if c, ok := r.classes[name]; ok {
		return c
	}
	c := &Class{Name: name}
	r.classes[name] = c
	r.order = append(r.order, c)
	return c
}

// Classes returns all classes in registration order.
func (r *Registry) Classes() []*Class { return append([]*Class(nil), r.order...) }

// Merge folds another registry's statistics into r, matching classes by
// name (creating any r lacks, in o's registration order). Every statistic
// is a sum, so merging the per-shard registries of a sharded run is
// order-insensitive over totals while the class order stays that of shard 0
// plus first-seen order of the rest — deterministic for a fixed shard order.
func (r *Registry) Merge(o *Registry) {
	for _, oc := range o.order {
		c := r.Class(oc.Name)
		c.Acquisitions += oc.Acquisitions
		c.Contentions += oc.Contentions
		c.WaitCycles += oc.WaitCycles
		c.HoldCycles += oc.HoldCycles
		for _, sc := range oc.sites {
			c.bumpSite(sc.pc, sc.n)
		}
	}
}

// Reset zeroes all statistics but keeps the classes.
func (r *Registry) Reset() {
	for _, c := range r.order {
		c.Acquisitions, c.Contentions, c.WaitCycles, c.HoldCycles = 0, 0, 0, 0
		c.sites = nil
	}
}

// Lock is one spinlock instance.
type Lock struct {
	class *Class
	addr  uint64 // 8 bytes of simulated memory holding the lock word

	releaseAt uint64
	holdFrom  uint64
	holder    int
	held      bool
}

// NewLock creates a lock of the given class whose lock word lives at addr.
func NewLock(class *Class, addr uint64) *Lock {
	return &Lock{class: class, addr: addr, holder: -1}
}

// Class returns the lock's class.
func (l *Lock) Class() *Class { return l.class }

// Addr returns the simulated address of the lock word.
func (l *Lock) Addr() uint64 { return l.addr }

// spinReadGap is how many cycles a spinning core pauses between re-reads of
// the lock word (the PAUSE loop of a real spinlock).
const spinReadGap = 150

// MaxSpinWait bounds one acquisition's recognized wait. The event simulator
// runs tasks to completion, so core clocks skew by up to a task length;
// without a bound, that skew would masquerade as lock contention. Real
// spinlock waits in this system are far below this bound.
const MaxSpinWait = 2000

// Acquire takes the lock, spinning until the current holder's simulated
// release time if necessary.
func (l *Lock) Acquire(c *sim.Ctx) {
	pc := c.Fn()
	c.Read(l.addr, 8) // initial test of the lock word
	now := c.Now()
	if l.releaseAt > now {
		until := l.releaseAt
		if until-now > MaxSpinWait {
			until = now + MaxSpinWait
		}
		l.class.Contentions++
		l.class.WaitCycles += until - now
		// Spin: re-read the lock word until the holder's release time.
		// These reads are real simulated accesses, so a contended lock
		// line ping-pongs between caches exactly as in hardware.
		for c.Now() < until {
			c.Compute(spinReadGap)
			if c.Now() >= until {
				break
			}
			c.Read(l.addr, 8)
		}
	}
	c.Write(l.addr, 8) // the winning atomic exchange
	l.class.Acquisitions++
	l.class.bumpSite(pc, 1)
	l.held = true
	l.holder = c.Core.ID
	l.holdFrom = c.Now()
	if l.releaseAt < c.Now() {
		l.releaseAt = c.Now() // still held; will move forward on Release
	}
}

// Release drops the lock.
func (l *Lock) Release(c *sim.Ctx) {
	if !l.held {
		panic(fmt.Sprintf("lockstat: release of unheld lock %q", l.class.Name))
	}
	c.Write(l.addr, 8)
	l.held = false
	l.holder = -1
	now := c.Now()
	if now > l.holdFrom {
		l.class.HoldCycles += now - l.holdFrom
	}
	if now > l.releaseAt {
		l.releaseAt = now
	}
}

// Report is the lock-stat output: one row per class with any activity,
// ordered by wait time, mirroring Tables 6.2 and 6.6.
type Report struct {
	Rows        []Row
	TotalCycles uint64 // denominator for the overhead column
}

// Row is one lock class's statistics.
type Row struct {
	Name         string
	WaitCycles   uint64
	HoldCycles   uint64
	Acquisitions uint64
	Contentions  uint64
	OverheadPct  float64
	Functions    []string
}

// BuildReport renders the registry against a total-CPU-cycle denominator
// (cores × measured interval).
func (r *Registry) BuildReport(totalCycles uint64) Report {
	rep := Report{TotalCycles: totalCycles}
	for _, c := range r.order {
		if c.Acquisitions == 0 {
			continue
		}
		row := Row{
			Name:         c.Name,
			WaitCycles:   c.WaitCycles,
			HoldCycles:   c.HoldCycles,
			Acquisitions: c.Acquisitions,
			Contentions:  c.Contentions,
		}
		if totalCycles > 0 {
			row.OverheadPct = 100 * float64(c.WaitCycles) / float64(totalCycles)
		}
		for i, pc := range c.Sites() {
			if i == 4 { // lock-stat prints a handful of sites
				break
			}
			row.Functions = append(row.Functions, sym.Name(pc))
		}
		rep.Rows = append(rep.Rows, row)
	}
	sort.Slice(rep.Rows, func(i, j int) bool { return rep.Rows[i].WaitCycles > rep.Rows[j].WaitCycles })
	return rep
}

// String renders the report as a table like the paper's Tables 6.2/6.6.
func (rep Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-20s %12s %9s  %s\n", "Lock Name", "Wait Time", "Overhead", "Functions")
	for _, row := range rep.Rows {
		fmt.Fprintf(&b, "%-20s %10.4fs %8.2f%%  %s\n",
			row.Name,
			float64(row.WaitCycles)/float64(sim.Freq),
			row.OverheadPct,
			strings.Join(row.Functions, ", "))
	}
	return b.String()
}
