package lockstat

import (
	"strings"
	"testing"
	"testing/quick"

	"dprof/internal/sim"
)

func testMachine() *sim.Machine {
	cfg := sim.DefaultConfig()
	cfg.Cores = 4
	return sim.New(cfg)
}

func TestUncontendedAcquire(t *testing.T) {
	m := testMachine()
	reg := NewRegistry()
	l := NewLock(reg.Class("test lock"), 0x1000)
	m.Schedule(0, 0, func(c *sim.Ctx) {
		l.Acquire(c)
		c.Compute(100)
		l.Release(c)
	})
	m.RunAll()
	cl := reg.Class("test lock")
	if cl.Acquisitions != 1 || cl.Contentions != 0 || cl.WaitCycles != 0 {
		t.Fatalf("class = %+v", cl)
	}
	if cl.HoldCycles < 100 {
		t.Fatalf("hold cycles = %d, want >= 100", cl.HoldCycles)
	}
}

func TestContentionRecordsWait(t *testing.T) {
	m := testMachine()
	reg := NewRegistry()
	l := NewLock(reg.Class("hot lock"), 0x2000)
	// Core 0 holds the lock over [~0, ~1000]; core 1 tries at t=100.
	m.Schedule(0, 0, func(c *sim.Ctx) {
		l.Acquire(c)
		c.Compute(1000)
		l.Release(c)
	})
	m.Schedule(1, 100, func(c *sim.Ctx) {
		l.Acquire(c)
		l.Release(c)
	})
	m.RunAll()
	cl := reg.Class("hot lock")
	if cl.Contentions != 1 {
		t.Fatalf("contentions = %d, want 1", cl.Contentions)
	}
	if cl.WaitCycles == 0 {
		t.Fatal("no wait recorded for a contended acquisition")
	}
}

func TestWaitClampedBySkewBound(t *testing.T) {
	m := testMachine()
	reg := NewRegistry()
	l := NewLock(reg.Class("skewed"), 0x3000)
	// A task far in the future releases at a huge timestamp; a task in the
	// "past" must not wait more than MaxSpinWait.
	m.Schedule(0, 0, func(c *sim.Ctx) {
		c.Compute(1_000_000)
		l.Acquire(c)
		l.Release(c)
	})
	m.Schedule(1, 10, func(c *sim.Ctx) {
		l.Acquire(c)
		l.Release(c)
	})
	m.RunAll()
	if w := reg.Class("skewed").WaitCycles; w > MaxSpinWait {
		t.Fatalf("wait = %d exceeds clamp %d", w, MaxSpinWait)
	}
}

func TestAcquireSitesRecorded(t *testing.T) {
	m := testMachine()
	reg := NewRegistry()
	l := NewLock(reg.Class("sited"), 0x4000)
	m.Schedule(0, 0, func(c *sim.Ctx) {
		defer c.Leave(c.Enter("dev_queue_xmit"))
		l.Acquire(c)
		l.Release(c)
	})
	m.RunAll()
	sites := reg.Class("sited").Sites()
	if len(sites) != 1 {
		t.Fatalf("sites = %d, want 1", len(sites))
	}
}

func TestReleaseUnheldPanics(t *testing.T) {
	m := testMachine()
	reg := NewRegistry()
	l := NewLock(reg.Class("x"), 0x5000)
	m.Schedule(0, 0, func(c *sim.Ctx) {
		defer func() {
			if recover() == nil {
				t.Error("release of unheld lock did not panic")
			}
		}()
		l.Release(c)
	})
	m.RunAll()
}

func TestLockGeneratesMemoryTraffic(t *testing.T) {
	m := testMachine()
	reg := NewRegistry()
	l := NewLock(reg.Class("mem"), 0x6000)
	m.Schedule(0, 0, func(c *sim.Ctx) {
		l.Acquire(c)
		l.Release(c)
	})
	m.RunAll()
	if m.Hier.Totals().Accesses < 3 { // read + write + write
		t.Fatalf("lock ops produced %d accesses", m.Hier.Totals().Accesses)
	}
}

func TestReportOrderingAndOverhead(t *testing.T) {
	m := testMachine()
	reg := NewRegistry()
	a := NewLock(reg.Class("A"), 0x7000)
	b := NewLock(reg.Class("B"), 0x8000)
	m.Schedule(0, 0, func(c *sim.Ctx) {
		a.Acquire(c)
		c.Compute(2000)
		a.Release(c)
	})
	m.Schedule(1, 100, func(c *sim.Ctx) {
		a.Acquire(c) // contends
		a.Release(c)
		b.Acquire(c) // uncontended
		b.Release(c)
	})
	m.RunAll()
	rep := reg.BuildReport(100_000)
	if len(rep.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rep.Rows))
	}
	if rep.Rows[0].Name != "A" {
		t.Fatalf("report not ordered by wait: %v", rep.Rows[0].Name)
	}
	if rep.Rows[0].OverheadPct <= 0 {
		t.Fatal("overhead percentage missing")
	}
	if !strings.Contains(rep.String(), "A") {
		t.Fatal("rendered report missing class name")
	}
}

func TestRegistryReset(t *testing.T) {
	m := testMachine()
	reg := NewRegistry()
	l := NewLock(reg.Class("r"), 0x9000)
	m.Schedule(0, 0, func(c *sim.Ctx) {
		l.Acquire(c)
		l.Release(c)
	})
	m.RunAll()
	reg.Reset()
	if reg.Class("r").Acquisitions != 0 {
		t.Fatal("reset did not clear counters")
	}
	if len(reg.Classes()) != 1 {
		t.Fatal("reset dropped the class")
	}
}

func TestClassReuse(t *testing.T) {
	reg := NewRegistry()
	if reg.Class("same") != reg.Class("same") {
		t.Fatal("Class created duplicate instances")
	}
}

// TestQuickHoldNeverNegative: however acquire/release interleave across
// cores, accumulated hold time never exceeds total simulated time per core
// count and never goes negative (unsigned underflow would produce a huge
// value).
func TestQuickHoldNeverNegative(t *testing.T) {
	prop := func(delays []uint16) bool {
		if len(delays) > 12 {
			delays = delays[:12]
		}
		m := testMachine()
		reg := NewRegistry()
		l := NewLock(reg.Class("q"), 0xA000)
		for i, d := range delays {
			core := i % 4
			hold := uint64(d % 2048)
			m.Schedule(core, uint64(i)*137, func(c *sim.Ctx) {
				l.Acquire(c)
				c.Compute(hold)
				l.Release(c)
			})
		}
		m.RunAll()
		cl := reg.Class("q")
		limit := m.MaxCoreTime() * 4
		return cl.HoldCycles <= limit && cl.WaitCycles <= limit
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
