package lockstat

// Snapshot support for warm-start forks. A lock's per-instance state is
// owner-side: the component that owns a Lock captures LockState alongside
// its own state (there is deliberately no global instance registry — apache
// creates a lock per live connection and a registry would pin every dead
// one). Class statistics live in the Registry, whose checkpoint is a deep
// copy restorable any number of times.

// LockState is the mutable per-instance state of one Lock.
type LockState struct {
	ReleaseAt uint64
	HoldFrom  uint64
	Holder    int
	Held      bool
}

// State returns the lock's mutable state (class and address are identity,
// not state).
func (l *Lock) State() LockState {
	return LockState{ReleaseAt: l.releaseAt, HoldFrom: l.holdFrom, Holder: l.holder, Held: l.held}
}

// SetState rewinds the lock to a previously captured state.
func (l *Lock) SetState(s LockState) {
	l.releaseAt = s.ReleaseAt
	l.holdFrom = s.HoldFrom
	l.holder = s.Holder
	l.held = s.Held
}

// RegistryState is a deep copy of every class's statistics, in registration
// order. Classes are append-only, so restoring by prefix position is exact:
// classes created after the checkpoint keep existing but are rewound to zero
// (the state they had before the checkpoint, i.e. nonexistent-as-zero).
type RegistryState struct {
	classes []classState
}

type classState struct {
	acquisitions uint64
	contentions  uint64
	waitCycles   uint64
	holdCycles   uint64
	sites        []siteCount
}

// Checkpoint deep-copies the registry's statistics.
func (r *Registry) Checkpoint() RegistryState {
	st := RegistryState{classes: make([]classState, len(r.order))}
	for i, c := range r.order {
		st.classes[i] = classState{
			acquisitions: c.Acquisitions,
			contentions:  c.Contentions,
			waitCycles:   c.WaitCycles,
			holdCycles:   c.HoldCycles,
			sites:        append([]siteCount(nil), c.sites...),
		}
	}
	return st
}

// Restore rewinds the registry to a checkpoint taken from it. Classes
// registered after the checkpoint are zeroed, not removed (live Lock
// instances may point at them).
func (r *Registry) Restore(st RegistryState) {
	for i, c := range r.order {
		if i < len(st.classes) {
			cs := &st.classes[i]
			c.Acquisitions = cs.acquisitions
			c.Contentions = cs.contentions
			c.WaitCycles = cs.waitCycles
			c.HoldCycles = cs.holdCycles
			c.sites = append(c.sites[:0], cs.sites...)
		} else {
			c.Acquisitions, c.Contentions, c.WaitCycles, c.HoldCycles = 0, 0, 0, 0
			c.sites = nil
		}
	}
}
