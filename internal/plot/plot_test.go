package plot

import (
	"strings"
	"testing"
)

func TestRenderContainsMarkersAndLegend(t *testing.T) {
	c := New("overhead", "rate", "percent")
	c.Add(Series{Name: "memcached", X: []float64{0, 1, 2}, Y: []float64{0, 1, 2}})
	c.Add(Series{Name: "apache", X: []float64{0, 1, 2}, Y: []float64{0, 2, 4}})
	out := c.Render()
	for _, want := range []string{"overhead", "*", "+", "memcached", "apache", "x: rate"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestRenderEmpty(t *testing.T) {
	out := New("empty", "", "").Render()
	if !strings.Contains(out, "no data") {
		t.Fatalf("empty chart render = %q", out)
	}
}

func TestMismatchedSeriesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched lengths did not panic")
		}
	}()
	New("bad", "", "").Add(Series{Name: "s", X: []float64{1}, Y: []float64{1, 2}})
}

func TestAxisAnchorsAtZero(t *testing.T) {
	c := New("t", "", "")
	c.Add(Series{Name: "s", X: []float64{0, 1}, Y: []float64{5, 10}})
	out := c.Render()
	if !strings.Contains(out, "0.0 |") {
		t.Errorf("y axis not anchored at zero:\n%s", out)
	}
}

func TestMonotoneCurveRendersHigherRight(t *testing.T) {
	c := New("t", "", "")
	c.Add(Series{Name: "s", X: []float64{0, 1, 2, 3}, Y: []float64{0, 1, 2, 3}})
	lines := strings.Split(c.Render(), "\n")
	// The topmost grid row containing a marker should have it on the right
	// half; the bottom-most on the left half.
	var topCol, botCol int = -1, -1
	for _, ln := range lines {
		if i := strings.IndexRune(ln, '*'); i >= 0 {
			if topCol == -1 {
				topCol = i
			}
			botCol = i
		}
	}
	if topCol == -1 || botCol == -1 {
		t.Fatal("no markers rendered")
	}
	if topCol <= botCol {
		t.Fatalf("increasing curve renders wrong: top marker at col %d, bottom at %d", topCol, botCol)
	}
}

func TestSinglePoint(t *testing.T) {
	c := New("p", "", "")
	c.Add(Series{Name: "s", X: []float64{5}, Y: []float64{5}})
	if out := c.Render(); !strings.Contains(out, "*") {
		t.Fatalf("single point not rendered:\n%s", out)
	}
}
