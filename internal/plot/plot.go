// Package plot renders small ASCII line charts for the figure experiments
// (Figures 6-2 and 6-3 are plots in the paper; the bench harness draws them
// in the terminal).
package plot

import (
	"fmt"
	"math"
	"strings"
)

// Series is one named line on a chart.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Chart is an ASCII line chart.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	Width  int // plot columns (default 60)
	Height int // plot rows (default 16)

	series []Series
}

// New creates a chart.
func New(title, xlabel, ylabel string) *Chart {
	return &Chart{Title: title, XLabel: xlabel, YLabel: ylabel, Width: 60, Height: 16}
}

// Add appends a series; X and Y must have equal lengths.
func (c *Chart) Add(s Series) *Chart {
	if len(s.X) != len(s.Y) {
		panic(fmt.Sprintf("plot: series %q has %d x values and %d y values",
			s.Name, len(s.X), len(s.Y)))
	}
	c.series = append(c.series, s)
	return c
}

// markers assigns each series a distinct point rune.
var markers = []rune{'*', '+', 'o', 'x', '#', '@'}

// Render draws the chart.
func (c *Chart) Render() string {
	w, h := c.Width, c.Height
	if w < 10 {
		w = 10
	}
	if h < 4 {
		h = 4
	}

	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	points := 0
	for _, s := range c.series {
		for i := range s.X {
			points++
			xmin, xmax = math.Min(xmin, s.X[i]), math.Max(xmax, s.X[i])
			ymin, ymax = math.Min(ymin, s.Y[i]), math.Max(ymax, s.Y[i])
		}
	}
	if points == 0 {
		return c.Title + "\n(no data)\n"
	}
	if ymin > 0 {
		ymin = 0 // anchor the axis at zero for rate/percentage plots
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}

	grid := make([][]rune, h)
	for r := range grid {
		grid[r] = []rune(strings.Repeat(" ", w))
	}
	put := func(x, y float64, m rune) {
		col := int(math.Round((x - xmin) / (xmax - xmin) * float64(w-1)))
		row := int(math.Round((y - ymin) / (ymax - ymin) * float64(h-1)))
		row = h - 1 - row
		if col >= 0 && col < w && row >= 0 && row < h {
			grid[row][col] = m
		}
	}
	for si, s := range c.series {
		m := markers[si%len(markers)]
		// Connect consecutive points with interpolated dots, then overlay
		// the data-point markers.
		for i := 1; i < len(s.X); i++ {
			steps := w / 2
			for k := 0; k <= steps; k++ {
				f := float64(k) / float64(steps)
				put(s.X[i-1]+f*(s.X[i]-s.X[i-1]), s.Y[i-1]+f*(s.Y[i]-s.Y[i-1]), '.')
			}
		}
		for i := range s.X {
			put(s.X[i], s.Y[i], m)
		}
	}

	var b strings.Builder
	if c.Title != "" {
		fmt.Fprintf(&b, "%s\n", c.Title)
	}
	for r, row := range grid {
		yval := ymax - (ymax-ymin)*float64(r)/float64(h-1)
		fmt.Fprintf(&b, "%10.1f |%s\n", yval, string(row))
	}
	fmt.Fprintf(&b, "%10s +%s\n", "", strings.Repeat("-", w))
	fmt.Fprintf(&b, "%10s  %-*.4g%*.4g\n", "", w/2, xmin, w-w/2, xmax)
	if c.XLabel != "" || c.YLabel != "" {
		fmt.Fprintf(&b, "%10s  x: %s, y: %s\n", "", c.XLabel, c.YLabel)
	}
	for si, s := range c.series {
		fmt.Fprintf(&b, "%10s  %c %s\n", "", markers[si%len(markers)], s.Name)
	}
	return b.String()
}
