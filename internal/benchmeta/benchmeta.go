// Package benchmeta is the shared provenance block for the repo's
// BENCH_*.json artifacts: which commit produced a checked-in measurement,
// when, and on what host shape. Every artifact writer embeds Provenance so
// the fields stay spelled identically across files, and a reader comparing
// artifacts across commits can always find the same keys.
package benchmeta

import (
	"encoding/json"
	"os"
	"runtime"
)

// Provenance ties a benchmark artifact to the commit and host that produced
// it. GitCommit, PrePRCommit, and WrittenAt come from the DPROF_GIT_COMMIT,
// DPROF_PRE_PR_COMMIT, and DPROF_WRITTEN_AT environment variables the bench
// harness (CI) injects; the host fields come from the runtime, because a
// 1-CPU runner honestly reporting ~1x parallel speedup is context a reader
// needs to interpret any ratio.
type Provenance struct {
	GitCommit   string `json:"git_commit,omitempty"`
	PrePRCommit string `json:"pre_pr_commit,omitempty"`
	WrittenAt   string `json:"written_at,omitempty"`
	GoMaxProcs  int    `json:"gomaxprocs"`
	HostCPUs    int    `json:"host_cpus"`
}

// Collect stamps a Provenance from the harness environment and the runtime.
func Collect() Provenance {
	return Provenance{
		GitCommit:   os.Getenv("DPROF_GIT_COMMIT"),
		PrePRCommit: os.Getenv("DPROF_PRE_PR_COMMIT"),
		WrittenAt:   os.Getenv("DPROF_WRITTEN_AT"),
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		HostCPUs:    runtime.NumCPU(),
	}
}

// Write lands an artifact as indented JSON with a trailing newline — the
// repo's BENCH_*.json convention.
func Write(path string, v any) error {
	buf, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}
