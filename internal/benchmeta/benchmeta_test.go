package benchmeta

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestCollectReadsHarnessEnv(t *testing.T) {
	t.Setenv("DPROF_GIT_COMMIT", "abc123")
	t.Setenv("DPROF_PRE_PR_COMMIT", "def456")
	t.Setenv("DPROF_WRITTEN_AT", "2026-01-02T03:04:05Z")
	p := Collect()
	if p.GitCommit != "abc123" || p.PrePRCommit != "def456" || p.WrittenAt != "2026-01-02T03:04:05Z" {
		t.Errorf("Collect() = %+v", p)
	}
	if p.GoMaxProcs <= 0 || p.HostCPUs <= 0 {
		t.Errorf("host fields not populated: %+v", p)
	}
}

func TestWriteEmbedsProvenanceInline(t *testing.T) {
	t.Setenv("DPROF_GIT_COMMIT", "abc123")
	t.Setenv("DPROF_PRE_PR_COMMIT", "")
	t.Setenv("DPROF_WRITTEN_AT", "")
	art := struct {
		Benchmark string `json:"benchmark"`
		Provenance
	}{Benchmark: "demo", Provenance: Collect()}
	path := filepath.Join(t.TempDir(), "BENCH_demo.json")
	if err := Write(path, art); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(string(raw), "\n") {
		t.Error("artifact does not end in a newline")
	}
	var got map[string]any
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatal(err)
	}
	// Embedded, not nested: readers find the same top-level keys in every
	// artifact, and empty optional stamps are omitted.
	if got["git_commit"] != "abc123" || got["benchmark"] != "demo" {
		t.Errorf("artifact keys wrong: %v", got)
	}
	for _, absent := range []string{"pre_pr_commit", "written_at", "Provenance"} {
		if _, ok := got[absent]; ok {
			t.Errorf("unexpected key %q in artifact: %v", absent, got)
		}
	}
	if _, ok := got["gomaxprocs"]; !ok {
		t.Errorf("gomaxprocs missing: %v", got)
	}
}
