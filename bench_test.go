// Package dprof_test is the benchmark harness: one testing.B benchmark per
// table and figure in the paper's evaluation (quick configurations — run
// cmd/dprof-bench for the full versions), plus microbenchmarks and the
// ablation benchmarks DESIGN.md calls out (directory vs snoop coherence,
// time-merge vs pairwise path construction, alien caches on the free path).
package dprof_test

import (
	"context"
	"io"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"testing"
	"time"

	"dprof/internal/app/memcachedsim"
	"dprof/internal/app/workload"
	"dprof/internal/benchmeta"
	"dprof/internal/cache"
	"dprof/internal/core"
	"dprof/internal/exp"
	"dprof/internal/loadgen"
	"dprof/internal/lockstat"
	"dprof/internal/mem"
	"dprof/internal/serve"
	"dprof/internal/sim"
	"dprof/internal/sym"
)

// benchExperiment runs one named experiment per iteration and publishes a
// chosen value as a benchmark metric.
func benchExperiment(b *testing.B, name, metric string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		r, err := exp.Run(context.Background(), name, exp.Options{Quick: true})
		if err != nil {
			b.Fatal(err)
		}
		if metric != "" {
			b.ReportMetric(r.Values[metric], metric)
		}
	}
}

// benchEngine measures wall clock for a fixed experiment subset at a given
// worker count; comparing Workers=1 against Workers=N shows the parallel
// engine's speedup on multi-core runners.
func benchEngine(b *testing.B, workers int) {
	names := []string{"table6.1", "figure6.1", "table6.2", "table6.3"}
	for i := 0; i < b.N; i++ {
		if _, err := exp.RunAll(context.Background(), names, exp.Options{Quick: true, Workers: workers}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEngineSerial(b *testing.B)   { benchEngine(b, 1) }
func BenchmarkEngineParallel(b *testing.B) { benchEngine(b, 0) }

// --- one benchmark per paper table/figure ---

func BenchmarkTable61(b *testing.B)  { benchExperiment(b, "table6.1", "size-1024_misspct") }
func BenchmarkFigure61(b *testing.B) { benchExperiment(b, "figure6.1", "cross_cpu_edges") }
func BenchmarkTable62(b *testing.B)  { benchExperiment(b, "table6.2", "Qdisc_lock_overhead_pct") }
func BenchmarkTable63(b *testing.B)  { benchExperiment(b, "table6.3", "functions_over_1pct") }
func BenchmarkMemcachedFix(b *testing.B) {
	benchExperiment(b, "fix-memcached", "speedup")
}
func BenchmarkTable64(b *testing.B) { benchExperiment(b, "table6.4", "tcp_sock_misspct") }
func BenchmarkTable65(b *testing.B) { benchExperiment(b, "table6.5", "tcp_sock_ws_growth") }
func BenchmarkTable66(b *testing.B) { benchExperiment(b, "table6.6", "futex_lock_overhead_pct") }
func BenchmarkApacheFix(b *testing.B) {
	benchExperiment(b, "fix-apache", "speedup")
}
func BenchmarkFigure62(b *testing.B) { benchExperiment(b, "figure6.2", "memcached_max") }
func BenchmarkTable67(b *testing.B)  { benchExperiment(b, "table6.7", "apache_size-1024_overhead_pct") }
func BenchmarkTable68(b *testing.B)  { benchExperiment(b, "table6.8", "apache_size-1024_hist_per_sec") }
func BenchmarkTable69(b *testing.B)  { benchExperiment(b, "table6.9", "size-1024_communication_pct") }
func BenchmarkFigure63(b *testing.B) { benchExperiment(b, "figure6.3", "baseline_paths") }
func BenchmarkTable610(b *testing.B) {
	benchExperiment(b, "table6.10", "memcached_size-1024_histories")
}

// --- the contention-scenario experiments (registry workloads) ---

func BenchmarkFalseshareScenario(b *testing.B) { benchExperiment(b, "falseshare", "speedup") }
func BenchmarkConflictScenario(b *testing.B)   { benchExperiment(b, "conflict", "speedup") }

// BenchmarkTrueshareScenario baselines the new lock-contention scenario: the
// speedup metric is the partitioning fix's gain over shared buckets.
func BenchmarkTrueshareScenario(b *testing.B) { benchExperiment(b, "trueshare", "speedup") }

// BenchmarkAlienPingScenario baselines the new remote-free scenario: the
// speedup metric is the local-free fix's gain over alien-cache drains.
func BenchmarkAlienPingScenario(b *testing.B) { benchExperiment(b, "alienping", "speedup") }

// benchScenarioRun measures one unprofiled scenario run through the
// registry (simulator throughput, no profiling overhead).
func benchScenarioRun(b *testing.B, name string, opts map[string]string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		inst := workload.MustBuild(name, opts)
		r := inst.Run(250_000, 1_500_000)
		b.ReportMetric(r.Values["throughput"], "sim_tput")
	}
}

func BenchmarkTrueshareRun(b *testing.B) { benchScenarioRun(b, "trueshare", nil) }
func BenchmarkAlienPingRun(b *testing.B) { benchScenarioRun(b, "alienping", nil) }

// --- NUMA topology: the same workload on a flat 1x16 machine vs the
// paper's 4x4 multi-socket layout, so BENCH_*.json tracks the socket-aware
// coherence hot path. The numaremote experiment bench tracks the fix.

func topo(sockets, cps int) map[string]string {
	return map[string]string{
		"sockets":          strconv.Itoa(sockets),
		"cores-per-socket": strconv.Itoa(cps),
	}
}

// The numaremote pair holds the consumer count fixed at 3 on both layouts
// (the 4x4 default is one consumer on each of the three non-producer chips;
// single-socket placement needs threads-per-socket 3 to match), so the
// benchmark isolates the NUMA cost rather than consumer parallelism.
func BenchmarkNumaRemoteRun1x16(b *testing.B) {
	opts := topo(1, 16)
	opts["threads-per-socket"] = "3"
	benchScenarioRun(b, "numaremote", opts)
}
func BenchmarkNumaRemoteRun4x4(b *testing.B) { benchScenarioRun(b, "numaremote", topo(4, 4)) }
func BenchmarkMemcachedRun1x16(b *testing.B) { benchScenarioRun(b, "memcached", topo(1, 16)) }
func BenchmarkMemcachedRun4x4(b *testing.B)  { benchScenarioRun(b, "memcached", topo(4, 4)) }

// --- windowed collection overhead: the same profiled memcached session
// monolithic (one window) vs split into 1 ms windows with a data-profile
// snapshot at every boundary, on both the flat and the paper topologies —
// the cost of the streaming pipeline's boundary merges and snapshots.

func benchWindowedSession(b *testing.B, opts map[string]string, windowCycles uint64) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		inst := workload.MustBuild("memcached", opts)
		s, err := core.NewSession(inst, core.SessionConfig{
			Profiler:     core.DefaultConfig(),
			Views:        []string{"dataprofile"},
			Warmup:       250_000,
			Measure:      4_000_000,
			WindowCycles: windowCycles,
		})
		if err != nil {
			b.Fatal(err)
		}
		s.Run()
		b.ReportMetric(float64(len(s.Windows())), "windows")
	}
}

func BenchmarkWindowedMemcached1x16Mono(b *testing.B) {
	benchWindowedSession(b, topo(1, 16), 0)
}
func BenchmarkWindowedMemcached1x16Windowed(b *testing.B) {
	benchWindowedSession(b, topo(1, 16), 1_000_000)
}
func BenchmarkWindowedMemcached4x4Mono(b *testing.B) {
	benchWindowedSession(b, topo(4, 4), 0)
}
func BenchmarkWindowedMemcached4x4Windowed(b *testing.B) {
	benchWindowedSession(b, topo(4, 4), 1_000_000)
}

// BenchmarkNumaRemoteScenario baselines the numaremote experiment: the
// speedup metric is node-local allocation's gain over cross-chip pulls.
func BenchmarkNumaRemoteScenario(b *testing.B) { benchExperiment(b, "numaremote", "speedup") }

// --- dprofd: cached-profile request throughput ---

// BenchmarkServeCachedProfile measures the dprofd hot path: a POST /profile
// whose content address is already resident, i.e. full HTTP round trip plus
// LRU lookup but no simulation. This is the request rate the service
// sustains once a profile is warm — the serving-layer overhead.
func BenchmarkServeCachedProfile(b *testing.B) {
	s, err := serve.New(serve.Config{Workers: 1, Quick: true})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Shutdown()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	const body = `{"workload":"falseshare","views":["dataprofile"],"measure_ms":1,"quick":true}`
	post := func() int {
		resp, err := http.Post(ts.URL+"/profile", "application/json", strings.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		defer resp.Body.Close()
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			b.Fatal(err)
		}
		return resp.StatusCode
	}
	if code := post(); code != 200 { // warm the cache: one real simulation
		b.Fatalf("warmup status %d", code)
	}
	if n := s.Simulations(); n != 1 {
		b.Fatalf("warmup ran %d simulations", n)
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if code := post(); code != 200 {
				b.Fatal("cached request failed")
			}
		}
	})
	b.StopTimer()
	if n := s.Simulations(); n != 1 {
		b.Fatalf("cached requests triggered %d extra simulations", n-1)
	}
}

// BenchmarkServeDiskWarmProfile measures the restart-warm path: the LRU is
// too small to retain both hot documents (capacity 1, two addresses
// alternating), so every request reads the document off the disk store —
// full HTTP round trip plus store checksum-verify, zero simulation. This
// is the floor a restarted replica serves at before its LRU re-warms.
func BenchmarkServeDiskWarmProfile(b *testing.B) {
	s, err := serve.New(serve.Config{Workers: 1, Quick: true, CacheEntries: 1, StoreDir: b.TempDir()})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Shutdown()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	bodies := []string{
		`{"workload":"falseshare","views":["dataprofile"],"measure_ms":1,"quick":true}`,
		`{"workload":"trueshare","views":["dataprofile"],"measure_ms":1,"quick":true}`,
	}
	post := func(body string) int {
		resp, err := http.Post(ts.URL+"/profile", "application/json", strings.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		defer resp.Body.Close()
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			b.Fatal(err)
		}
		return resp.StatusCode
	}
	for _, body := range bodies { // warm the disk: one simulation each
		if code := post(body); code != 200 {
			b.Fatalf("warmup status %d", code)
		}
	}
	warmed := s.Simulations()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if code := post(bodies[i%2]); code != 200 {
			b.Fatal("disk-warm request failed")
		}
	}
	b.StopTimer()
	if n := s.Simulations(); n != warmed {
		b.Fatalf("disk-warm requests triggered %d extra simulations", n-warmed)
	}
}

// --- ablation: directory vs snoop coherence lookup ---

func benchCoherence(b *testing.B, snoop bool) {
	cfg := cache.DefaultConfig()
	cfg.Snoop = snoop
	h := cache.New(cfg, 16)
	rng := rand.New(rand.NewSource(1))
	addrs := make([]uint64, 4096)
	for i := range addrs {
		addrs[i] = uint64(rng.Intn(1 << 22))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Access(i%16, addrs[i%len(addrs)], i%3 == 0)
	}
}

// BenchmarkCoherenceDirectory measures the default O(1) directory MESI.
func BenchmarkCoherenceDirectory(b *testing.B) { benchCoherence(b, false) }

// BenchmarkCoherenceSnoop measures the scan-all-caches alternative; the
// results are identical (tested by TestQuickSnoopEquivalence) but the
// directory is what keeps 16-core simulations fast.
func BenchmarkCoherenceSnoop(b *testing.B) { benchCoherence(b, true) }

// --- ablation: alien caches on the remote-free path ---

func benchRemoteFree(b *testing.B, alienCap int) {
	scfg := sim.DefaultConfig()
	scfg.Cores = 2
	m := sim.New(scfg)
	mcfg := mem.DefaultConfig()
	mcfg.AlienCap = alienCap
	a := mem.New(mcfg, 2, lockstat.NewRegistry())
	typ := a.RegisterType("obj", 256, "")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var addr uint64
		m.Schedule(0, m.MaxCoreTime(), func(c *sim.Ctx) { addr = a.Alloc(c, typ) })
		m.RunAll()
		m.Schedule(1, m.MaxCoreTime(), func(c *sim.Ctx) { a.Free(c, addr) })
		m.RunAll()
	}
}

// BenchmarkRemoteFreeBatched uses the default alien-cache batching.
func BenchmarkRemoteFreeBatched(b *testing.B) { benchRemoteFree(b, mem.DefaultConfig().AlienCap) }

// BenchmarkRemoteFreeUnbatched drains on every remote free (alien cap 1):
// the pool lock and slab bookkeeping are touched per object.
func BenchmarkRemoteFreeUnbatched(b *testing.B) { benchRemoteFree(b, 1) }

// --- ablation: path construction from histories (time-merge is the default;
// pairwise adds link evidence and quadratically more histories) ---

func makeHistories(typ *core.TypeDesc, n int, pairwise bool) []*core.History {
	var out []*core.History
	fns := []sym.PC{sym.Intern("rx"), sym.Intern("tx"), sym.Intern("free_path")}
	for i := 0; i < n; i++ {
		offsets := []uint32{uint32(i%4) * 8}
		if pairwise {
			offsets = []uint32{uint32(i%4) * 8, uint32((i+1)%4) * 8}
		}
		h := &core.History{
			Type: typ, Offsets: offsets, WatchLen: 8, Set: i / 4,
			AllocCore: 0, Lifetime: 1000,
		}
		for j, off := range offsets {
			h.Elems = append(h.Elems, core.HistElem{
				Offset: off, IP: fns[(i+j)%3], CPU: int32(j % 2), Time: uint64(10 + j*100),
			})
		}
		out = append(out, h)
	}
	return out
}

func benchPathTraces(b *testing.B, pairwise bool) {
	typ := &core.TypeDesc{Name: "bench", Size: 32, ObjSize: 32}
	hists := makeHistories(typ, 256, pairwise)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.BuildPathTraces(typ, hists, nil)
	}
}

func BenchmarkPathTracesTimeMerge(b *testing.B) { benchPathTraces(b, false) }
func BenchmarkPathTracesPairwise(b *testing.B)  { benchPathTraces(b, true) }

// --- microbenchmarks of the substrate hot paths ---

func BenchmarkSimAccess(b *testing.B) {
	m := sim.New(sim.DefaultConfig())
	c := m.Ctx(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Read(uint64(i%4096)*64, 8)
	}
}

// BenchmarkSimAccessHooked measures the access path with a profiler-style
// hook attached — the configuration every experiment runs under. The hook
// dispatch must not allocate (the scratch AccessEvent is reused per core).
func BenchmarkSimAccessHooked(b *testing.B) {
	m := sim.New(sim.DefaultConfig())
	var seen uint64
	m.AddAccessHook(func(c *sim.Ctx, ev *sim.AccessEvent) { seen += uint64(ev.Latency) })
	c := m.Ctx(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Read(uint64(i%4096)*64, 8)
	}
	if seen == 0 {
		b.Fatal("hook never ran")
	}
}

func BenchmarkAllocFree(b *testing.B) {
	scfg := sim.DefaultConfig()
	scfg.Cores = 1
	m := sim.New(scfg)
	a := mem.New(mem.DefaultConfig(), 1, lockstat.NewRegistry())
	typ := a.RegisterType("micro", 256, "")
	c := m.Ctx(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Free(c, a.Alloc(c, typ))
	}
}

// BenchmarkMemcachedSteadyState measures the simulator's throughput in
// simulated requests per wall second for the headline workload.
func BenchmarkMemcachedSteadyState(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := memcachedsim.DefaultConfig()
		cfg.Kern.LocalTxQueue = true
		bench := memcachedsim.New(cfg)
		st := bench.Run(500_000, 2_000_000)
		b.ReportMetric(float64(st.Completed), "requests")
	}
}

// --- sharded simulation: the same 4x4 memcached run unsharded, sharded but
// executed one part at a time, and sharded with all parts concurrent. The
// serial/parallel pair shares one build shape, so the wall-clock ratio is the
// intra-run parallel speedup; the unsharded row anchors it to the classic
// single-machine simulator.

// buildShardedMemcached4x4 builds the paper topology split into one shard per
// socket, in the requested execution mode.
func buildShardedMemcached4x4(tb testing.TB, sequential bool) core.Runnable {
	tb.Helper()
	opts := topo(4, 4)
	opts["parallel-shards"] = "4"
	inst, err := workload.Build("memcached", opts)
	if err != nil {
		tb.Fatal(err)
	}
	inst.(*core.ShardSet).SetSequential(sequential)
	return inst
}

func benchShardedMemcached(b *testing.B, sequential bool) {
	for i := 0; i < b.N; i++ {
		inst := buildShardedMemcached4x4(b, sequential)
		r := inst.Run(250_000, 1_500_000)
		b.ReportMetric(r.Values["throughput"], "sim_tput")
	}
}

func BenchmarkShardedMemcached4x4Serial(b *testing.B)   { benchShardedMemcached(b, true) }
func BenchmarkShardedMemcached4x4Parallel(b *testing.B) { benchShardedMemcached(b, false) }
func BenchmarkShardedMemcached4x4Unsharded(b *testing.B) {
	for i := 0; i < b.N; i++ {
		inst := workload.MustBuild("memcached", topo(4, 4))
		r := inst.Run(250_000, 1_500_000)
		b.ReportMetric(r.Values["throughput"], "sim_tput")
	}
}

// --- machine-readable bench results ---

// benchArtifact is the schema of a BENCH_*.json file: one benchmark family,
// wall-clock seconds per variant, and the shared benchmeta provenance block
// tying a checked-in artifact to the commit, time, and host that produced it.
type benchArtifact struct {
	Benchmark string `json:"benchmark"`
	benchmeta.Provenance
	Iterations   int                `json:"iterations"`
	WarmupCycles uint64             `json:"warmup_cycles"`
	MeasureCycle uint64             `json:"measure_cycles"`
	Shards       int                `json:"shards"`
	WallSeconds  map[string]float64 `json:"wall_seconds"`
	Speedups     map[string]float64 `json:"speedups"`
}

// TestWriteShardBenchArtifact measures the sharded-memcached family and
// writes BENCH_shard_parallel.json at the repo root. It is the bench-harness
// entry point CI and release runs use to track the perf trajectory across
// commits; ordinary test runs skip it. Enable with:
//
//	DPROF_BENCH_JSON=1 go test -run TestWriteShardBenchArtifact -count=1 .
func TestWriteShardBenchArtifact(t *testing.T) {
	if os.Getenv("DPROF_BENCH_JSON") == "" {
		t.Skip("set DPROF_BENCH_JSON=1 to measure and write BENCH_shard_parallel.json")
	}
	const warmup, measure = 250_000, 1_500_000
	const iters = 3
	timeRun := func(build func() core.Runnable) float64 {
		best := math.Inf(1) // min-of-N: the least-disturbed measurement
		for i := 0; i < iters; i++ {
			inst := build()
			start := time.Now()
			inst.Run(warmup, measure)
			if s := time.Since(start).Seconds(); s < best {
				best = s
			}
		}
		return best
	}
	wall := map[string]float64{
		"unsharded": timeRun(func() core.Runnable {
			return workload.MustBuild("memcached", topo(4, 4))
		}),
		"sharded_serial": timeRun(func() core.Runnable {
			return buildShardedMemcached4x4(t, true)
		}),
		"sharded_parallel": timeRun(func() core.Runnable {
			return buildShardedMemcached4x4(t, false)
		}),
	}
	art := benchArtifact{
		Benchmark:    "memcached-4x4-sharded",
		Provenance:   benchmeta.Collect(),
		Iterations:   iters,
		WarmupCycles: warmup,
		MeasureCycle: measure,
		Shards:       4,
		WallSeconds:  wall,
		Speedups: map[string]float64{
			"parallel_vs_serial":    wall["sharded_serial"] / wall["sharded_parallel"],
			"parallel_vs_unsharded": wall["unsharded"] / wall["sharded_parallel"],
		},
	}
	if err := benchmeta.Write("BENCH_shard_parallel.json", art); err != nil {
		t.Fatal(err)
	}
	t.Logf("parallel vs serial on %d CPUs: %.2fx", art.HostCPUs, art.Speedups["parallel_vs_serial"])
}

// warmstartArtifact is the BENCH_warmstart.json schema: wall clock cold vs
// warm-start fork mode for two shapes. The engine suite measures the paper
// experiments as they ship (fork savings bounded by each experiment's
// warmup share); the measure family measures dprofd's serving pattern — one
// warmup, many requests differing only in measured length — where the
// warmup amortizes across every fork.
type warmstartArtifact struct {
	Benchmark string `json:"benchmark"`
	benchmeta.Provenance
	Iterations          int                `json:"iterations"`
	EngineExperiments   []string           `json:"engine_experiments"`
	FamilyWarmupCycles  uint64             `json:"family_warmup_cycles"`
	FamilyMeasureCycles uint64             `json:"family_measure_cycles"`
	FamilyForks         int                `json:"family_forks"`
	WallSeconds         map[string]float64 `json:"wall_seconds"`
	Speedups            map[string]float64 `json:"speedups"`
}

// TestWriteWarmstartBenchArtifact times the engine suite cold and in
// warm-start fork mode (byte-identical output, proven by the equivalence
// suites) and writes BENCH_warmstart.json at the repo root. Like the other
// artifact writers it is a bench-harness entry point; ordinary test runs
// skip it. Enable with:
//
//	DPROF_BENCH_JSON=1 go test -run TestWriteWarmstartBenchArtifact -count=1 .
func TestWriteWarmstartBenchArtifact(t *testing.T) {
	if os.Getenv("DPROF_BENCH_JSON") == "" {
		t.Skip("set DPROF_BENCH_JSON=1 to measure and write BENCH_warmstart.json")
	}
	const iters = 5
	// Experiments with warm-key overlap: table6.1/figure6.1/ext-oracle share
	// one memcached warmup, table6.2 shares with fix-memcached's default
	// side, and the scenario diffs fork each broken/fixed warmup once per
	// side. Workers=1 keeps the measurement a serial wall clock.
	names := []string{"table6.1", "figure6.1", "ext-oracle", "table6.2", "fix-memcached", "diff-falseshare"}
	runSuite := func(warm bool) {
		if _, err := exp.RunAll(context.Background(), names, exp.Options{Quick: true, Workers: 1, WarmStart: warm}); err != nil {
			t.Fatal(err)
		}
	}
	// The measure family: one long warmup, then forks of short measured
	// phases — a dprofd checkpoint-pool hit pattern, where cold serving
	// would replay the warmup for every request.
	const (
		famWarmup  = 1_000_000
		famMeasure = 250_000
		famForks   = 8
	)
	famSession := func() *core.Session {
		s, err := core.NewSession(workload.MustBuild("memcached", nil), core.SessionConfig{
			Profiler: core.DefaultConfig(),
			Views:    []string{"dataprofile"},
			Warmup:   famWarmup,
			Measure:  famMeasure,
		})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	famCold := func() {
		for i := 0; i < famForks; i++ {
			famSession().Run()
		}
	}
	famFork := func() {
		cp, err := famSession().Warmup()
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < famForks; i++ {
			cp.Fork(famMeasure)
		}
	}

	// Interleave the cold and fork runs so both minimums share machine
	// state: a background load shift hits both sides alike.
	wall := map[string]float64{}
	timed := func(key string, f func()) {
		start := time.Now()
		f()
		if s := time.Since(start).Seconds(); wall[key] == 0 || s < wall[key] {
			wall[key] = s
		}
	}
	for i := 0; i < iters; i++ {
		timed("cold", func() { runSuite(false) })
		timed("warm_fork", func() { runSuite(true) })
		timed("family_cold", famCold)
		timed("family_fork", famFork)
	}
	art := warmstartArtifact{
		Benchmark:           "warmstart-fork",
		Provenance:          benchmeta.Collect(),
		Iterations:          iters,
		EngineExperiments:   names,
		FamilyWarmupCycles:  famWarmup,
		FamilyMeasureCycles: famMeasure,
		FamilyForks:         famForks,
		WallSeconds:         wall,
		Speedups: map[string]float64{
			"engine_suite":   wall["cold"] / wall["warm_fork"],
			"measure_family": wall["family_cold"] / wall["family_fork"],
		},
	}
	if err := benchmeta.Write("BENCH_warmstart.json", art); err != nil {
		t.Fatal(err)
	}
	t.Logf("engine suite warm-start fork speedup: %.2fx (%.2fs -> %.2fs)",
		art.Speedups["engine_suite"], wall["cold"], wall["warm_fork"])
	t.Logf("measure family (%d forks) speedup: %.2fx (%.2fs -> %.2fs)",
		famForks, art.Speedups["measure_family"], wall["family_cold"], wall["family_fork"])
}

// TestWriteDprofdLoadBenchArtifact drives the Zipf load harness through the
// three serving regimes — cold single replica (every distinct key simulates
// once), warm restart (same store directory, zero simulation work), and a
// three-replica consistent-hash fleet — and writes BENCH_dprofd_load.json at
// the repo root. Like TestWriteShardBenchArtifact, it is the bench-harness
// entry point; ordinary test runs skip it. Enable with:
//
//	DPROF_BENCH_JSON=1 go test -run TestWriteDprofdLoadBenchArtifact -count=1 .
func TestWriteDprofdLoadBenchArtifact(t *testing.T) {
	if os.Getenv("DPROF_BENCH_JSON") == "" {
		t.Skip("set DPROF_BENCH_JSON=1 to measure and write BENCH_dprofd_load.json")
	}
	cfg := loadgen.Config{
		Requests:    120,
		Concurrency: 8,
		Keys:        24,
		ZipfS:       1.2,
		ZipfV:       1,
		Seed:        7,
	}
	storeDir := t.TempDir()
	ctx := context.Background()
	art := loadgen.NewArtifact(cfg)

	// Phase 1: cold — empty LRU, empty store; the Zipf head warms fast but
	// every distinct key pays one simulation.
	{
		s, err := serve.New(serve.Config{Workers: 2, Quick: true, StoreDir: storeDir})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(s.Handler())
		cfg.Targets = []string{ts.URL}
		res, err := loadgen.Run(ctx, cfg)
		if err != nil {
			t.Fatal(err)
		}
		art.Phases["cold"] = res
		t.Logf("cold: %.1f req/s, %d simulations", res.Throughput, s.Simulations())
		// Backfill the deck tail: Zipf draws may skip a few cold keys, so
		// touch every entry once to make the store fully resident before
		// the warm phase asserts zero simulation work.
		for _, req := range loadgen.Deck(cfg.Keys, cfg.Seed) {
			resp, err := http.Post(ts.URL+"/profile", "application/json", strings.NewReader(string(req.Body)))
			if err != nil {
				t.Fatal(err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		ts.Close()
		s.Shutdown()
	}

	// Phase 2: warm restart — a fresh process on the same store directory.
	// Every document is already on disk, so the whole run must complete
	// with zero simulation work (the acceptance criterion for the store).
	{
		s, err := serve.New(serve.Config{Workers: 2, Quick: true, StoreDir: storeDir})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(s.Handler())
		cfg.Targets = []string{ts.URL}
		res, err := loadgen.Run(ctx, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if n := s.Simulations(); n != 0 {
			t.Fatalf("warm phase ran %d simulations; want 0 (store misses)", n)
		}
		art.Phases["warm"] = res
		t.Logf("warm: %.1f req/s, 0 simulations", res.Throughput)
		ts.Close()
		s.Shutdown()
	}

	// Phase 3: multi_replica — three fresh replicas in a consistent-hash
	// ring, empty stores; routing concentrates each key on its owner, so
	// fleet-wide simulations stay at one per distinct key.
	{
		const n = 3
		servers := make([]*serve.Server, n)
		tss := make([]*httptest.Server, n)
		urls := make([]string, n)
		for i := range servers {
			s, err := serve.New(serve.Config{Workers: 2, Quick: true, StoreDir: t.TempDir()})
			if err != nil {
				t.Fatal(err)
			}
			servers[i] = s
			tss[i] = httptest.NewServer(s.Handler())
			urls[i] = tss[i].URL
		}
		for i, s := range servers {
			if err := s.SetPeers(urls[i], urls); err != nil {
				t.Fatal(err)
			}
		}
		cfg.Targets = urls
		res, err := loadgen.Run(ctx, cfg)
		if err != nil {
			t.Fatal(err)
		}
		var sims int64
		for _, s := range servers {
			sims += s.Simulations()
		}
		art.Phases["multi_replica"] = res
		t.Logf("multi_replica: %.1f req/s, %d fleet simulations", res.Throughput, sims)
		for i := range servers {
			tss[i].Close()
			servers[i].Shutdown()
		}
	}

	if err := art.Write("BENCH_dprofd_load.json"); err != nil {
		t.Fatal(err)
	}
}

// hotpathScenario is one row of the hot-path artifact: how many simulated
// memory accesses the scenario retired and the wall cost per access.
type hotpathScenario struct {
	Accesses       uint64  `json:"accesses"`
	WallSeconds    float64 `json:"wall_seconds"`
	NsPerAccess    float64 `json:"ns_per_access"`
	AccessesPerSec float64 `json:"accesses_per_sec"`
}

// hotpathArtifact is the BENCH_hotpath.json schema: the engine-benchmark
// wall clock optimized vs the retained reference paths (access counts are
// invariant between the modes — the equivalence suite proves byte identity
// — so the wall ratio IS the accesses/sec speedup), per-scenario ns/access
// rows, and the serving layer's cold-phase load throughput.
//
// The reference mode retains only the pre-PR *dispatch* semantics; the
// cache-internal structural work (packed ways, fused directory probes, the
// L3 presence table) applies in both modes, so engine_speedup understates
// the gain over the pre-PR tree. engine_pre_pr_speedup is the honest
// headline: the same engine subset, same flags, same Go toolchain, run
// through a binary built from the pre-PR commit on the same host. The
// harness points DPROF_PRE_PR_BIN at that binary (and names its commit in
// DPROF_PRE_PR_COMMIT); the test interleaves its runs with the optimized
// in-process runs so both minimums share machine state.
type hotpathArtifact struct {
	Benchmark string `json:"benchmark"`
	benchmeta.Provenance
	Iterations         int                        `json:"iterations"`
	EngineExperiments  []string                   `json:"engine_experiments"`
	EngineWallSeconds  map[string]float64         `json:"engine_wall_seconds"`
	EngineSpeedup      float64                    `json:"engine_speedup"`
	EnginePrePRSpeedup float64                    `json:"engine_pre_pr_speedup,omitempty"`
	Scenarios          map[string]hotpathScenario `json:"scenarios"`
	LoadgenColdRPS     float64                    `json:"loadgen_cold_throughput_rps"`
}

// TestWriteHotpathBenchArtifact measures the simulator hot paths (MRU fast
// path, armed hook dispatch, bypass-slot event wheel) against the retained
// reference paths and writes BENCH_hotpath.json at the repo root. Like the
// other artifact writers it is a bench-harness entry point; ordinary test
// runs skip it. Enable with:
//
//	DPROF_BENCH_JSON=1 go test -run TestWriteHotpathBenchArtifact -count=1 .
//
// It must not run in parallel with other tests: the reference half flips
// the package-global default mode for machines built inside the engine.
func TestWriteHotpathBenchArtifact(t *testing.T) {
	if os.Getenv("DPROF_BENCH_JSON") == "" {
		t.Skip("set DPROF_BENCH_JSON=1 to measure and write BENCH_hotpath.json")
	}
	const iters = 5
	minOf := func(run func()) float64 {
		best := math.Inf(1) // min-of-N: the least-disturbed measurement
		for i := 0; i < iters; i++ {
			start := time.Now()
			run()
			if s := time.Since(start).Seconds(); s < best {
				best = s
			}
		}
		return best
	}

	// Engine benchmarks, both modes. Workers=1 keeps the measurement a
	// serial wall clock rather than a scheduling artifact.
	engineNames := []string{"table6.1", "figure6.1", "table6.2", "table6.3"}
	runEngine := func() {
		if _, err := exp.RunAll(context.Background(), engineNames, exp.Options{Quick: true, Workers: 1}); err != nil {
			t.Fatal(err)
		}
	}
	// Pre-PR comparison: DPROF_PRE_PR_BIN names a dprof binary built from
	// the pre-PR commit with the same toolchain. Its runs are interleaved
	// with the optimized in-process runs so both sides see the same machine
	// state — background load shifts hit both mins alike, which a number
	// measured minutes apart would not guarantee.
	var wallOpt, wallPre float64
	if bin := os.Getenv("DPROF_PRE_PR_BIN"); bin != "" {
		wallOpt, wallPre = math.Inf(1), math.Inf(1)
		preArgs := []string{"-experiment", strings.Join(engineNames, ","), "-quick", "-parallel", "1"}
		for i := 0; i < iters; i++ {
			start := time.Now()
			cmd := exec.Command(bin, preArgs...)
			cmd.Stdout, cmd.Stderr = io.Discard, io.Discard
			if err := cmd.Run(); err != nil {
				t.Fatalf("pre-PR binary %s: %v", bin, err)
			}
			if s := time.Since(start).Seconds(); s < wallPre {
				wallPre = s
			}
			start = time.Now()
			runEngine()
			if s := time.Since(start).Seconds(); s < wallOpt {
				wallOpt = s
			}
		}
	} else {
		wallOpt = minOf(runEngine)
	}
	sim.SetDefaultReference(true)
	wallRef := minOf(runEngine)
	sim.SetDefaultReference(false)

	// Per-scenario ns/access: retired accesses over the whole run (warmup
	// included — both phases exercise the same hot path) divided into the
	// run's wall clock.
	countAccesses := func(inst core.Runnable) uint64 {
		machines := []*sim.Machine{inst.Machine()}
		if set, ok := inst.(*core.ShardSet); ok {
			machines = machines[:0]
			for _, p := range set.Parts() {
				machines = append(machines, p.Machine())
			}
		}
		var n uint64
		for _, m := range machines {
			for i := 0; i < m.NumCores(); i++ {
				n += m.Core(i).Retired()
			}
		}
		return n
	}
	const warmup, measure = 250_000, 1_500_000
	scenario := func(build func() core.Runnable, profiled bool) hotpathScenario {
		var accesses uint64
		wall := minOf(func() {
			inst := build()
			if profiled {
				s, err := core.NewSession(inst, core.SessionConfig{
					Profiler: core.DefaultConfig(),
					Views:    []string{"dataprofile"},
					Warmup:   warmup,
					Measure:  measure,
				})
				if err != nil {
					t.Fatal(err)
				}
				s.Run()
			} else {
				inst.Run(warmup, measure)
			}
			accesses = countAccesses(inst)
		})
		if accesses == 0 {
			t.Fatal("scenario retired no accesses")
		}
		return hotpathScenario{
			Accesses:       accesses,
			WallSeconds:    wall,
			NsPerAccess:    wall * 1e9 / float64(accesses),
			AccessesPerSec: float64(accesses) / wall,
		}
	}
	scenarios := map[string]hotpathScenario{
		"memcached_4x4_monolithic": scenario(func() core.Runnable {
			return workload.MustBuild("memcached", topo(4, 4))
		}, false),
		"memcached_4x4_profiled": scenario(func() core.Runnable {
			return workload.MustBuild("memcached", topo(4, 4))
		}, true),
		"memcached_4x4_sharded": scenario(func() core.Runnable {
			return buildShardedMemcached4x4(t, false)
		}, false),
	}

	// Cold-phase loadgen throughput: a fresh server, every distinct key
	// simulating once — the serving regime the hot paths speed up most.
	var coldRPS float64
	{
		s, err := serve.New(serve.Config{Workers: 2, Quick: true})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(s.Handler())
		res, err := loadgen.Run(context.Background(), loadgen.Config{
			Targets:     []string{ts.URL},
			Requests:    60,
			Concurrency: 4,
			Keys:        12,
			Seed:        7,
		})
		if err != nil {
			t.Fatal(err)
		}
		coldRPS = res.Throughput
		ts.Close()
		s.Shutdown()
	}

	engineWall := map[string]float64{"optimized": wallOpt, "reference": wallRef}
	art := hotpathArtifact{
		Benchmark:         "simulator-hotpath",
		Provenance:        benchmeta.Collect(),
		Iterations:        iters,
		EngineExperiments: engineNames,
		EngineWallSeconds: engineWall,
		EngineSpeedup:     wallRef / wallOpt,
		Scenarios:         scenarios,
		LoadgenColdRPS:    coldRPS,
	}
	if wallPre != 0 && !math.IsInf(wallPre, 1) {
		engineWall["pre_pr"] = wallPre
		art.EnginePrePRSpeedup = wallPre / wallOpt
	}
	if err := benchmeta.Write("BENCH_hotpath.json", art); err != nil {
		t.Fatal(err)
	}
	t.Logf("engine speedup optimized vs reference: %.2fx (%.2fs -> %.2fs)",
		art.EngineSpeedup, wallRef, wallOpt)
	if art.EnginePrePRSpeedup != 0 {
		t.Logf("engine speedup vs pre-PR binary %s: %.2fx (%.2fs -> %.2fs)",
			art.PrePRCommit, art.EnginePrePRSpeedup, engineWall["pre_pr"], wallOpt)
	}
	for name, sc := range scenarios {
		t.Logf("%s: %.1f ns/access (%.2fM accesses/s)", name, sc.NsPerAccess, sc.AccessesPerSec/1e6)
	}
}
